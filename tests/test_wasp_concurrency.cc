// Concurrency regression tests for the scale-out invocation engine: the
// sharded pool under multi-threaded Acquire/Release, the cleaner crew, the
// executor batch/future paths, and snapshot take/restore races.  The suite
// asserts *conservation* (no shell lost, stats add up) and correctness of
// results under contention; run it under TSan (TSAN=1 ./ci.sh) to check the
// synchronization itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/freelist.h"
#include "src/wasp/pool.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 16;

void HammerPool(wasp::Pool& pool) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      vkvm::VmConfig cfg;
      // Two mem sizes so free lists are keyed, not monolithic.
      cfg.mem_size = (t % 2 == 0) ? (1ULL << 20) : (2ULL << 20);
      for (int i = 0; i < kItersPerThread; ++i) {
        auto vm = pool.Acquire(cfg);
        ASSERT_NE(vm, nullptr);
        uint8_t b = static_cast<uint8_t>(t);
        ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
        pool.Release(std::move(vm));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

TEST(Concurrency, PoolHammerSyncConservesShells) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  HammerPool(pool);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  EXPECT_EQ(stats.cleans, stats.releases);
  // Every fresh-created shell must end up parked in some free list.
  EXPECT_EQ(pool.TotalFreeShells(), stats.fresh_creates);
}

TEST(Concurrency, PoolHammerAsyncCleanerCrewConservesShells) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kAsync, 4, 3});
  HammerPool(pool);
  pool.DrainCleaner();
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  EXPECT_EQ(stats.cleans, stats.releases);
  EXPECT_EQ(pool.TotalFreeShells(), stats.fresh_creates);
}

TEST(Concurrency, CleanerCrewDrainsBeforeStatsRead) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kAsync, 2, 2});
  vkvm::VmConfig cfg;
  for (int i = 0; i < 6; ++i) {
    auto vm = pool.Acquire(cfg);
    uint8_t b = 1;
    ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
    pool.Release(std::move(vm));
  }
  pool.DrainCleaner();
  EXPECT_EQ(pool.stats().cleans, 6u);
  EXPECT_EQ(pool.TotalFreeShells(), pool.stats().fresh_creates);
}

TEST(Concurrency, DestructionWithPendingDirtyShellsDoesNotHang) {
  // No DrainCleaner: the destructor itself must shut the crew down with
  // dirty shells still queued — no deadlock, no leak (ASan/TSan cover the
  // memory and ordering; completion of this test body is the assertion).
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kAsync, 2, 2});
  vkvm::VmConfig cfg;
  for (int i = 0; i < 6; ++i) {
    auto vm = pool.Acquire(cfg);
    uint8_t b = 1;
    ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
    pool.Release(std::move(vm));
  }
}

TEST(Concurrency, PrewarmSpreadsShellsAcrossShards) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  vkvm::VmConfig cfg;
  pool.Prewarm(cfg, 8);
  ASSERT_EQ(pool.shard_count(), 4u);
  for (size_t s = 0; s < pool.shard_count(); ++s) {
    EXPECT_EQ(pool.FreeShellsInShard(s, cfg.mem_size), 2u) << "shard " << s;
  }
  EXPECT_EQ(pool.FreeShells(cfg.mem_size), 8u);
}

TEST(Concurrency, AcquireStealsFromSiblingShards) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  vkvm::VmConfig cfg;
  pool.Prewarm(cfg, 4);  // one shell per shard
  // A single thread acquires all four: three must be stolen cross-shard.
  std::vector<std::unique_ptr<vkvm::Vm>> held;
  for (int i = 0; i < 4; ++i) {
    bool from_pool = false;
    held.push_back(pool.Acquire(cfg, &from_pool));
    EXPECT_TRUE(from_pool) << "acquire " << i << " missed the warm pool";
  }
  EXPECT_EQ(pool.stats().fresh_creates, 0u);
  for (auto& vm : held) {
    pool.Release(std::move(vm));
  }
}

TEST(Concurrency, ConcurrentInvokeComputesCorrectResults) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &image, &failures, t] {
      wasp::VirtineSpec spec;
      spec.image = &image.value();
      wasp::VirtineFunc<int64_t(int64_t, int64_t)> add(&runtime, spec);
      for (int i = 0; i < kItersPerThread; ++i) {
        auto r = add.Call(t, i);
        if (!r.ok() || *r != t + i) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  runtime.pool().DrainCleaner();
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(runtime.pool().TotalFreeShells(), stats.fresh_creates);
}

// Keyed Acquire racing Release (and ReleaseAffine) on the same snapshot
// generation: shells must be conserved, and an affine hit must always carry
// the parked memory while non-affine paths only ever see cleaned shells.
TEST(Concurrency, KeyedAcquireReleaseRaceConservesShells) {
  wasp::Pool pool(wasp::PoolOptions{wasp::CleanMode::kSync, 4, 1});
  static constexpr uint64_t kGenerations[] = {101, 202};
  std::atomic<int> leaks{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &leaks, t] {
      vkvm::VmConfig cfg;
      const uint64_t generation = kGenerations[t % 2];
      for (int i = 0; i < kItersPerThread; ++i) {
        bool affine = false;
        auto vm = pool.AcquireAffine(cfg, generation, &affine);
        ASSERT_NE(vm, nullptr);
        const uint8_t tag = static_cast<uint8_t>(0x10 + t % 2);
        if (affine) {
          // An affine shell must hold its generation's tag, never the
          // sibling generation's.
          if (vm->memory().data()[0x9000] != tag) {
            leaks.fetch_add(1);
          }
        } else if (vm->memory().data()[0x9000] != 0) {
          leaks.fetch_add(1);  // a clean shell leaked prior memory
        }
        ASSERT_TRUE(vm->memory().Write(0x9000, &tag, 1).ok());
        if (i % 4 == 3) {
          pool.Release(std::move(vm));  // occasionally retire through cleaning
        } else {
          vm->memory().BeginEpoch();
          pool.ReleaseAffine(std::move(vm), generation);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(leaks.load(), 0);
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
  // Conservation: every shell ever created is parked free or affine.
  EXPECT_EQ(pool.TotalFreeShells() + pool.TotalAffineShells(), stats.fresh_creates);
  EXPECT_GT(stats.affine_parks, 0u);
}

// Runtime-level: concurrent snapshot-backed invocations on one key, with the
// affine fast path engaged, must all compute the right answer.
TEST(Concurrency, AffineRestoreRaceComputesCorrectResults) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &image, &failures] {
      wasp::VirtineSpec spec;
      spec.image = &image.value();
      spec.key = "affine-race";
      spec.use_snapshot = true;
      wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
      for (int i = 0; i < 8; ++i) {
        auto r = fib.Call(10);
        if (!r.ok() || *r != 55) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Steady state guarantees parks (every successful warm run re-parks its
  // shell); affine hits depend on scheduling but the counters must agree.
  const wasp::PoolStats stats = runtime.pool().stats();
  EXPECT_GT(stats.affine_parks, 0u);
  EXPECT_GE(stats.affine_parks, stats.affine_hits);
}

TEST(Concurrency, SnapshotTakeRestoreRaceIsConsistent) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  const int64_t expected = 55;  // fib(10)
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  // All threads race the first-run snapshot Put on the same key, then keep
  // restoring from it; every run must return fib(10) regardless of which
  // thread's snapshot won.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&runtime, &image, &failures] {
      wasp::VirtineSpec spec;
      spec.image = &image.value();
      spec.key = "race-key";
      spec.use_snapshot = true;
      wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
      for (int i = 0; i < 6; ++i) {
        auto r = fib.Call(10);
        if (!r.ok() || *r != expected) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(runtime.snapshots().size(), 1u);
}

TEST(Concurrency, ExecutorBatchRunsAllSpecs) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  wasp::Runtime runtime(options);
  std::vector<wasp::VirtineSpec> specs;
  for (int i = 0; i < 32; ++i) {
    wasp::VirtineSpec spec;
    spec.image = &image.value();
    spec.word_bytes = 8;
    wasp::ArgPacker packer(spec.word_bytes);
    packer.AddWord(static_cast<uint64_t>(i));
    packer.AddWord(100);
    spec.args_page = packer.Finish();
    specs.push_back(std::move(spec));
  }
  wasp::Executor::BatchStats stats;
  auto outcomes = wasp::Executor::Run(&runtime, specs, kThreads, &stats);
  ASSERT_EQ(outcomes.size(), specs.size());
  uint64_t total = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_EQ(outcomes[i].result_word, i + 100) << "outcome order scrambled";
    total += outcomes[i].stats.total_cycles;
  }
  // Lane accounting is conservative: lane busy cycles sum to the batch total.
  ASSERT_EQ(stats.worker_cycles.size(), static_cast<size_t>(kThreads));
  uint64_t lane_sum = 0;
  for (uint64_t lane : stats.worker_cycles) {
    lane_sum += lane;
  }
  EXPECT_EQ(lane_sum, total);
  EXPECT_GE(stats.MakespanCycles(), total / kThreads);
  EXPECT_LT(stats.MakespanCycles(), total);
}

// --- Bounded admission (ExecutorOptions) --------------------------------------

// A task that parks its worker until the gate opens, so tests can fill the
// queue behind it deterministically.
wasp::Executor::Task GateTask(std::shared_future<void> gate) {
  return [gate] {
    gate.wait();
    return wasp::RunOutcome{};
  };
}

// Waits until the (single) worker has dequeued the gate task, i.e. the
// queue is observably empty while the worker is parked.
void AwaitWorkerParked(wasp::Executor& executor) {
  for (int i = 0; i < 5000 && executor.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(executor.queue_depth(), 0u);
}

TEST(Concurrency, ExecutorQueueFillsToDepthThenTrySubmitRejects) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{1, 2, /*block_when_full=*/false});
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  // Two quick jobs fill the queue to max_queue_depth.
  std::future<wasp::RunOutcome> queued[2];
  for (auto& future : queued) {
    ASSERT_TRUE(executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &future));
  }
  EXPECT_EQ(executor.queue_depth(), 2u);

  // Both the task and the VirtineSpec entry points must now reject.
  std::future<wasp::RunOutcome> rejected;
  EXPECT_FALSE(executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &rejected));
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  EXPECT_FALSE(executor.TrySubmit(spec, &rejected));
  const wasp::ExecutorStats mid = executor.stats();
  EXPECT_EQ(mid.rejected, 2u);
  EXPECT_EQ(mid.submitted, 3u);  // gate + two queued; rejects never enqueue
  EXPECT_EQ(mid.peak_queue_depth, 2u);

  gate.set_value();
  gated.get();
  for (auto& future : queued) {
    future.get();
  }
  // Space freed: the same TrySubmit now succeeds and runs a real invocation.
  std::future<wasp::RunOutcome> accepted;
  wasp::ArgPacker packer(8);
  packer.AddWord(20);
  packer.AddWord(22);
  spec.args_page = packer.Finish();
  ASSERT_TRUE(executor.TrySubmit(spec, &accepted));
  wasp::RunOutcome outcome = accepted.get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.result_word, 42u);
}

TEST(Concurrency, ExecutorBlockingModeNeverRejects) {
  wasp::Runtime runtime;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{1, 1, /*block_when_full=*/true});
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  // Fill the queue, then hammer TrySubmitTask from several threads: every
  // submission must block for space and eventually be accepted.
  std::future<wasp::RunOutcome> queued;
  ASSERT_TRUE(executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &queued));
  constexpr int kSubmitters = 4;
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&executor, &accepted] {
      std::future<wasp::RunOutcome> future;
      if (executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &future)) {
        accepted.fetch_add(1);
        future.get();
      }
    });
  }
  // The submitters are blocked on a full queue until the gate opens.
  gate.set_value();
  gated.get();
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(accepted.load(), kSubmitters);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kSubmitters) + 2);
}

TEST(Concurrency, ExecutorDestructionDrainsAllAcceptedFutures) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::Runtime runtime;
  constexpr int kJobs = 12;
  std::vector<std::future<wasp::RunOutcome>> futures;
  std::vector<wasp::VirtineSpec> specs(kJobs);
  {
    wasp::Executor executor(&runtime, wasp::ExecutorOptions{2, 0, true});
    for (int i = 0; i < kJobs; ++i) {
      wasp::VirtineSpec& spec = specs[static_cast<size_t>(i)];
      spec.image = &image.value();
      wasp::ArgPacker packer(8);
      packer.AddWord(static_cast<uint64_t>(i));
      packer.AddWord(1000);
      spec.args_page = packer.Finish();
      futures.push_back(executor.Submit(spec));
    }
    // Executor destroyed with most jobs still queued.
  }
  for (int i = 0; i < kJobs; ++i) {
    auto& future = futures[static_cast<size_t>(i)];
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "job " << i << " not drained";
    wasp::RunOutcome outcome = future.get();
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, static_cast<uint64_t>(i) + 1000);
  }
}

TEST(Concurrency, ExecutorRejectionCountersMatchObservedRejections) {
  wasp::Runtime runtime;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{1, 1, /*block_when_full=*/false});
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  uint64_t observed_accepts = 0;
  uint64_t observed_rejects = 0;
  std::vector<std::future<wasp::RunOutcome>> futures;
  for (int i = 0; i < 20; ++i) {
    std::future<wasp::RunOutcome> future;
    if (executor.TrySubmitTask([] { return wasp::RunOutcome{}; }, &future)) {
      ++observed_accepts;
      futures.push_back(std::move(future));
    } else {
      ++observed_rejects;
    }
  }
  EXPECT_EQ(observed_accepts, 1u);  // the queue holds exactly one behind the gate
  gate.set_value();
  gated.get();
  for (auto& future : futures) {
    future.get();
  }
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.rejected, observed_rejects);
  EXPECT_EQ(stats.submitted, observed_accepts + 1);  // + the gate task
  // completed trails set_value by one increment; poll briefly.
  for (int i = 0; i < 5000 && executor.stats().completed < observed_accepts + 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(executor.stats().completed, observed_accepts + 1);
}

TEST(Concurrency, ExecutorQuotaRejectIsClassifiedSeparatelyFromQueueFull) {
  wasp::Runtime runtime;
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.max_queue_depth = 3;
  options.block_when_full = false;
  options.key_quota = 2;
  wasp::Executor executor(&runtime, options);
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  auto noop = [] { return wasp::RunOutcome{}; };
  std::vector<std::future<wasp::RunOutcome>> accepted;
  // Two jobs under the hot key fill its quota (queued + in flight).
  for (int i = 0; i < 2; ++i) {
    std::future<wasp::RunOutcome> future;
    ASSERT_TRUE(executor.TrySubmitTask(noop, &future, "hot"));
    accepted.push_back(std::move(future));
  }
  EXPECT_EQ(executor.KeyLoad("hot"), 2u);

  // Third hot job: quota reject — classified as such, distinct from full.
  std::future<wasp::RunOutcome> rejected;
  wasp::Admission admission = wasp::Admission::kAccepted;
  EXPECT_FALSE(executor.TrySubmitTask(noop, &rejected, "hot",
                                      wasp::KeyClass::kLatency, &admission));
  EXPECT_EQ(admission, wasp::Admission::kQuotaExceeded);
  {
    const wasp::ExecutorStats stats = executor.stats();
    EXPECT_EQ(stats.quota_rejected, 1u);
    EXPECT_EQ(stats.rejected, 0u);
  }

  // A different key is untouched by the hot key's quota...
  std::future<wasp::RunOutcome> future;
  ASSERT_TRUE(executor.TrySubmitTask(noop, &future, "cold"));
  accepted.push_back(std::move(future));
  // ...until the *global* bound trips, which is classified as queue-full.
  EXPECT_FALSE(executor.TrySubmitTask(noop, &rejected, "cold2",
                                      wasp::KeyClass::kLatency, &admission));
  EXPECT_EQ(admission, wasp::Admission::kQueueFull);
  {
    const wasp::ExecutorStats stats = executor.stats();
    EXPECT_EQ(stats.quota_rejected, 1u);
    EXPECT_EQ(stats.rejected, 1u);
  }

  gate.set_value();
  gated.get();
  for (auto& f : accepted) {
    f.get();
  }
  EXPECT_EQ(executor.KeyLoad("hot"), 0u);  // entries erased at zero load
}

TEST(Concurrency, ExecutorWeightedDequeuePrefersLatencyWithoutStarvingBatch) {
  wasp::Runtime runtime;
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.batch_weight = 4;
  wasp::Executor executor(&runtime, options);
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&mu, &order](std::string tag) -> wasp::Executor::Task {
    return [&mu, &order, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
      return wasp::RunOutcome{};
    };
  };
  std::vector<std::future<wasp::RunOutcome>> futures;
  // Interleave submissions so FIFO would alternate; the weighted dequeue
  // must instead run 3 latency jobs per batch job while both classes wait.
  for (int i = 0; i < 4; ++i) {
    std::future<wasp::RunOutcome> f;
    ASSERT_TRUE(executor.TrySubmitTask(record("B" + std::to_string(i)), &f, {},
                                       wasp::KeyClass::kBatch));
    futures.push_back(std::move(f));
  }
  for (int i = 0; i < 8; ++i) {
    std::future<wasp::RunOutcome> f;
    ASSERT_TRUE(executor.TrySubmitTask(record("L" + std::to_string(i)), &f, {},
                                       wasp::KeyClass::kLatency));
    futures.push_back(std::move(f));
  }
  gate.set_value();
  gated.get();
  for (auto& f : futures) {
    f.get();
  }
  const std::vector<std::string> expected = {"L0", "L1", "L2", "B0", "L3", "L4",
                                             "L5", "B1", "L6", "L7", "B2", "B3"};
  EXPECT_EQ(order, expected);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.dequeued_latency, 9u);  // 8 + the latency-class gate task
  EXPECT_EQ(stats.dequeued_batch, 4u);
}

TEST(Concurrency, ExecutorFifoAcrossClassesWhenWeightingDisabled) {
  wasp::Runtime runtime;
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.batch_weight = 0;  // ungoverned: strict submission order
  wasp::Executor executor(&runtime, options);
  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  std::mutex mu;
  std::vector<std::string> order;
  std::vector<std::future<wasp::RunOutcome>> futures;
  std::vector<std::string> expected;
  for (int i = 0; i < 8; ++i) {
    const std::string tag = (i % 2 == 0 ? "B" : "L") + std::to_string(i);
    expected.push_back(tag);
    std::future<wasp::RunOutcome> f;
    ASSERT_TRUE(executor.TrySubmitTask(
        [&mu, &order, tag] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(tag);
          return wasp::RunOutcome{};
        },
        &f, {}, i % 2 == 0 ? wasp::KeyClass::kBatch : wasp::KeyClass::kLatency));
    futures.push_back(std::move(f));
  }
  gate.set_value();
  gated.get();
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(order, expected);
}

TEST(Concurrency, AdmissionAccountingInvariantHoldsAtEveryObservationPoint) {
  // The differential accounting check: submitted == completed + queued +
  // in_flight must hold at *every* stats() snapshot (the gauges are read
  // under the same lock as the counters), and every TrySubmit attempt must
  // be accounted exactly once as accepted, quota-rejected, or rejected.
  wasp::Runtime runtime;
  wasp::ExecutorOptions options;
  options.workers = 2;
  options.max_queue_depth = 4;
  options.block_when_full = false;
  options.key_quota = 3;
  wasp::Executor executor(&runtime, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> accepted{0};
  constexpr int kSubmitters = 4;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&executor, &stop, &attempts, &accepted, t] {
      const std::string key = t % 2 == 0 ? "hot" : "cold";
      const wasp::KeyClass klass =
          t % 2 == 0 ? wasp::KeyClass::kBatch : wasp::KeyClass::kLatency;
      std::vector<std::future<wasp::RunOutcome>> futures;
      while (!stop.load(std::memory_order_relaxed)) {
        std::future<wasp::RunOutcome> future;
        attempts.fetch_add(1, std::memory_order_relaxed);
        if (executor.TrySubmitTask(
                [] {
                  std::this_thread::sleep_for(std::chrono::microseconds(20));
                  return wasp::RunOutcome{};
                },
                &future, key, klass)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          futures.push_back(std::move(future));
        }
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }

  for (int i = 0; i < 400; ++i) {
    const wasp::ExecutorStats s = executor.stats();
    ASSERT_EQ(s.submitted, s.completed + s.queued + s.in_flight)
        << "submitted=" << s.submitted << " completed=" << s.completed
        << " queued=" << s.queued << " in_flight=" << s.in_flight;
    ASSERT_LE(s.queued, options.max_queue_depth);
  }
  stop.store(true);
  for (std::thread& thread : submitters) {
    thread.join();
  }

  // Drain, then the books must close exactly.
  for (int i = 0; i < 5000 && executor.stats().completed < accepted.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const wasp::ExecutorStats s = executor.stats();
  EXPECT_EQ(s.submitted, accepted.load());
  EXPECT_EQ(s.completed, accepted.load());
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.submitted + s.rejected + s.quota_rejected, attempts.load());
  EXPECT_EQ(executor.KeyLoad("hot"), 0u);
  EXPECT_EQ(executor.KeyLoad("cold"), 0u);
}

TEST(Concurrency, KeyQuotaIsAHardCapEvenForBlockingWaiters) {
  // block_when_full waiters pass the entry quota check, park for global
  // space, and must be re-checked at wake: the hot key's load (queued +
  // in flight) can never exceed the quota at any observation point.
  wasp::Runtime runtime;
  wasp::ExecutorOptions options;
  options.workers = 2;
  options.max_queue_depth = 2;
  options.block_when_full = true;
  options.key_quota = 3;
  wasp::Executor executor(&runtime, options);

  std::atomic<bool> stop{false};
  constexpr int kSubmitters = 4;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> quota_rejected{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      std::vector<std::future<wasp::RunOutcome>> futures;
      while (!stop.load(std::memory_order_relaxed)) {
        std::future<wasp::RunOutcome> future;
        wasp::Admission admission = wasp::Admission::kAccepted;
        if (executor.TrySubmitTask(
                [] {
                  std::this_thread::sleep_for(std::chrono::microseconds(30));
                  return wasp::RunOutcome{};
                },
                &future, "hot", wasp::KeyClass::kLatency, &admission)) {
          accepted.fetch_add(1);
          futures.push_back(std::move(future));
        } else if (admission == wasp::Admission::kQuotaExceeded) {
          quota_rejected.fetch_add(1);
        }
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  // Sample the invariant while waiting for the submitters to make real
  // progress (acceptances AND quota trips), so the check races live load.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_LE(executor.KeyLoad("hot"), options.key_quota) << "sample " << i;
    if (i >= 200 && accepted.load() > 0 && quota_rejected.load() > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (std::thread& thread : submitters) {
    thread.join();
  }
  EXPECT_GT(accepted.load(), 0u);
  // 4 submitters against a quota of 3 must have tripped it.
  EXPECT_GT(quota_rejected.load(), 0u);
  const wasp::ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.quota_rejected, quota_rejected.load());
}

TEST(Concurrency, TrySubmitThenTeardownResolvesEveryAcceptedFuture) {
  // Concurrent TrySubmit bursts race each other for quota and queue slots;
  // the executor is then destroyed with the queue still loaded (a slow task
  // pins the workers).  Every accepted future must be resolved by the time
  // the destructor returns, and the books must close exactly.
  wasp::Runtime runtime;
  std::vector<std::future<wasp::RunOutcome>> futures;
  std::mutex futures_mu;
  uint64_t accepted = 0;
  uint64_t attempts = 0;
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 500;
  {
    wasp::Executor executor(&runtime, wasp::ExecutorOptions{2, 8, false, 4});
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    std::atomic<uint64_t> accepted_count{0};
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&executor, &futures, &futures_mu, &accepted_count, t] {
        const std::string key = "k" + std::to_string(t % 2);
        for (int i = 0; i < kPerSubmitter; ++i) {
          std::future<wasp::RunOutcome> future;
          if (executor.TrySubmitTask(
                  [] {
                    std::this_thread::sleep_for(std::chrono::microseconds(10));
                    return wasp::RunOutcome{};
                  },
                  &future, key)) {
            accepted_count.fetch_add(1);
            std::lock_guard<std::mutex> lock(futures_mu);
            futures.push_back(std::move(future));
          }
        }
      });
    }
    for (std::thread& thread : submitters) {
      thread.join();
    }
    accepted = accepted_count.load();
    attempts = static_cast<uint64_t>(kSubmitters) * kPerSubmitter;
    const wasp::ExecutorStats mid = executor.stats();
    EXPECT_EQ(mid.submitted, accepted);
    EXPECT_EQ(mid.submitted + mid.rejected + mid.quota_rejected, attempts);
    EXPECT_EQ(mid.submitted, mid.completed + mid.queued + mid.in_flight);
    // Executor destroyed here, typically with jobs still queued/in flight.
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_LE(accepted, attempts);
  // Drain guarantee: every accepted submission resolved, ready immediately.
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    future.get();
  }
}

TEST(Concurrency, InvokeAsyncResolvesFutures) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok());
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  options.async_workers = 4;
  wasp::Runtime runtime(options);
  std::vector<std::future<wasp::RunOutcome>> futures;
  std::vector<wasp::VirtineSpec> specs(16);
  for (int i = 0; i < 16; ++i) {
    wasp::VirtineSpec& spec = specs[static_cast<size_t>(i)];
    spec.image = &image.value();
    spec.word_bytes = 8;
    wasp::ArgPacker packer(spec.word_bytes);
    packer.AddWord(static_cast<uint64_t>(i));
    packer.AddWord(7);
    spec.args_page = packer.Finish();
    futures.push_back(runtime.InvokeAsync(spec));
  }
  for (int i = 0; i < 16; ++i) {
    wasp::RunOutcome outcome = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result_word, static_cast<uint64_t>(i + 7));
  }
}

// --- Lock-free fast path (PR 7): Treiber free-list + lane caches ------------

struct StackNode {
  std::atomic<StackNode*> next{nullptr};
  int id = 0;
};

// The classic ABA interleaving, replayed deterministically: a "stalled" pop
// snapshots head == B, the world pops B and A and pushes B back (same top
// pointer, different stack), and the stale CAS must FAIL — its success would
// install the long-gone A as the new head.  PopIfHeadIs issues exactly the
// compare a stalled Pop would.
TEST(Concurrency, TaggedStackAbaRegressionStaleCasMustFail) {
  wasp::TaggedStack<StackNode> stack;
  StackNode a, b;
  a.id = 1;
  b.id = 2;
  stack.Push(&a);
  stack.Push(&b);  // stack: B -> A

  // Thread 1 "stalls" here with a snapshot of (B, tag).
  const uint64_t stale = stack.PackedHead();
  ASSERT_EQ(wasp::TaggedStack<StackNode>::UnpackPtr(stale), &b);

  // Meanwhile the world: pop B, pop A, push B back.  Head points at B
  // again — bitwise-identical pointer, completely different stack.
  ASSERT_EQ(stack.Pop(), &b);
  ASSERT_EQ(stack.Pop(), &a);
  stack.Push(&b);  // stack: B (b.next == nullptr now)

  // Without the tag this CAS would succeed and resurrect A as head.  The
  // three interleaved operations each bumped the tag, so it must fail.
  EXPECT_EQ(stack.PopIfHeadIs(stale), nullptr);
  EXPECT_EQ(wasp::TaggedStack<StackNode>::UnpackPtr(stack.PackedHead()), &b);

  // A *fresh* snapshot replayed unchanged is the control: it must pop.
  const uint64_t fresh = stack.PackedHead();
  EXPECT_EQ(stack.PopIfHeadIs(fresh), &b);
  EXPECT_EQ(stack.Pop(), nullptr);  // and the stack is exactly empty
}

// Node conservation under contended push/pop: every node checked in comes
// back exactly once.  Run under TSan this also vets the stack's memory
// ordering (the stale top->next read in Pop is the interesting part).
TEST(Concurrency, TaggedStackConcurrentPushPopConservesNodes) {
  constexpr int kNodes = 64;
  wasp::TaggedStack<StackNode> stack;
  std::vector<std::unique_ptr<StackNode>> arena;
  arena.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    arena.push_back(std::make_unique<StackNode>());
    arena.back()->id = i;
    stack.Push(arena.back().get());
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stack] {
      for (int i = 0; i < kItersPerThread * 8; ++i) {
        StackNode* node = stack.Pop();
        if (node != nullptr) {
          stack.Push(node);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Drain: exactly kNodes distinct nodes, no duplicates, no losses.
  std::vector<bool> seen(kNodes, false);
  int drained = 0;
  while (StackNode* node = stack.Pop()) {
    ASSERT_FALSE(seen[static_cast<size_t>(node->id)]) << "node popped twice";
    seen[static_cast<size_t>(node->id)] = true;
    ++drained;
  }
  EXPECT_EQ(drained, kNodes);
}

// The tentpole's conservation stress: N lanes x M iterations of mixed
// Acquire / AcquireAffine / Release / ReleaseAffine over a small pool with a
// binding affine budget and a mid-run generation retirement, quiescing
// between rounds.  At every quiesce point, shells created == shells parked
// (free + affine) — eviction and retirement recycle through the free side —
// and the acquire tiers partition the acquires exactly.
TEST(Concurrency, LockFreeFastPathMixedOpsConserveAtQuiescePoints) {
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kSync;
  options.shards = 4;
  options.lanes = kThreads;
  options.numa_nodes = 2;                      // exercise the NUMA steal order
  options.affine_budget_bytes = 3ULL << 20;    // ~3 shells: evictions guaranteed
  wasp::Pool pool(options);
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    // One generation per (round, parity) so the retired one never comes back.
    const uint64_t gens[2] = {1000ull + 2 * static_cast<uint64_t>(round),
                              1001ull + 2 * static_cast<uint64_t>(round)};
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&pool, &gens, t] {
        wasp::Pool::BindLane(static_cast<uint32_t>(t));
        vkvm::VmConfig cfg;
        const uint64_t generation = gens[t % 2];
        for (int i = 0; i < kItersPerThread; ++i) {
          std::unique_ptr<vkvm::Vm> vm;
          if (i % 3 == 0) {
            vm = pool.Acquire(cfg);
          } else {
            bool affine = false;
            vm = pool.AcquireAffine(cfg, generation, &affine);
          }
          ASSERT_NE(vm, nullptr);
          uint8_t b = static_cast<uint8_t>(t + 1);
          ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
          if (i % 4 == 3) {
            pool.Release(std::move(vm));
          } else {
            vm->memory().BeginEpoch();
            pool.ReleaseAffine(std::move(vm), generation);
          }
        }
      });
    }
    // Retire one of the round's generations mid-run: parks racing the
    // retirement must divert to the cleaning path, never re-strand shells.
    threads.emplace_back([&pool, &gens] { pool.RetireGeneration(gens[1]); });
    for (std::thread& thread : threads) {
      thread.join();
    }
    // Quiesce point: conservation and tier partition must hold exactly.
    const wasp::PoolStats stats = pool.stats();
    EXPECT_EQ(stats.acquires, stats.pool_hits + stats.fresh_creates);
    EXPECT_EQ(stats.acquires,
              stats.lane_cache_hits + stats.freelist_hits + stats.slow_path_acquires);
    EXPECT_EQ(stats.releases, stats.acquires);
    EXPECT_EQ(pool.TotalFreeShells() + pool.TotalAffineShells(), stats.fresh_creates);
    EXPECT_EQ(pool.AffineShells(gens[1]), 0u) << "retired generation re-parked";
    // The gauge equals the per-generation rows at quiescence.
    const wasp::AffineAccounting acct = pool.affine_accounting();
    uint64_t sum = 0;
    for (const auto& gen : acct.generations) {
      sum += gen.shared_bytes + gen.private_bytes;
    }
    EXPECT_EQ(sum, acct.resident_bytes);
    EXPECT_LE(acct.resident_bytes, options.affine_budget_bytes);
  }
  // Deterministic eviction epilogue: overstuff the 3 MB budget with four
  // 1 MB parks under distinct generations — the budget must evict (LRU
  // generation first) and conservation must survive the eviction path too.
  {
    vkvm::VmConfig cfg;
    std::vector<std::unique_ptr<vkvm::Vm>> held;
    for (int i = 0; i < 4; ++i) {
      held.push_back(pool.Acquire(cfg));
    }
    for (int i = 0; i < 4; ++i) {
      held[static_cast<size_t>(i)]->memory().BeginEpoch();
      pool.ReleaseAffine(std::move(held[static_cast<size_t>(i)]),
                         2000ull + static_cast<uint64_t>(i));
    }
  }
  const wasp::PoolStats stats = pool.stats();
  EXPECT_GT(stats.affine_evictions, 0u);
  EXPECT_LE(pool.affine_accounting().resident_bytes, options.affine_budget_bytes);
  EXPECT_EQ(pool.TotalFreeShells() + pool.TotalAffineShells(), stats.fresh_creates);
  EXPECT_GT(stats.lane_cache_hits + stats.freelist_hits, 0u);
}

// The fault path under contention: quarantines racing ordinary releases,
// affine parks, and a mid-run generation retirement.  Every quarantined
// shell must be scrubbed by the crew and readmitted — never re-parked
// affine, never destroyed (async mode), never leaked — and the ledger
// (quarantined == scrubbed + destroyed + pending) must balance exactly at
// quiescence alongside the pool's shell-conservation invariant.
TEST(Concurrency, ConcurrentQuarantineConservesShellsAndScrubsAll) {
  wasp::PoolOptions options;
  options.mode = wasp::CleanMode::kAsync;
  options.shards = 4;
  options.cleaners = 2;
  options.lanes = kThreads;
  wasp::Pool pool(options);
  constexpr uint64_t kGen = 7777;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      wasp::Pool::BindLane(static_cast<uint32_t>(t));
      vkvm::VmConfig cfg;
      for (int i = 0; i < kItersPerThread; ++i) {
        std::unique_ptr<vkvm::Vm> vm;
        if (i % 3 == 0) {
          bool affine = false;
          vm = pool.AcquireAffine(cfg, kGen, &affine);
        } else {
          vm = pool.Acquire(cfg);
        }
        ASSERT_NE(vm, nullptr);
        uint8_t b = static_cast<uint8_t>(t + 1);
        ASSERT_TRUE(vm->memory().Write(0x9000, &b, 1).ok());
        if (i % 4 == 1) {
          pool.Quarantine(std::move(vm));  // this iteration's invocation faulted
        } else if (i % 4 == 3) {
          vm->memory().BeginEpoch();
          pool.ReleaseAffine(std::move(vm), kGen);
        } else {
          pool.Release(std::move(vm));
        }
      }
    });
  }
  // Retire the generation mid-run: quarantines and affine parks racing the
  // retirement must keep both ledgers exact.
  threads.emplace_back([&pool] { pool.RetireGeneration(kGen); });
  for (std::thread& thread : threads) {
    thread.join();
  }
  pool.DrainCleaner();
  const wasp::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_EQ(stats.quarantined, static_cast<uint64_t>(kThreads * kItersPerThread / 4));
  EXPECT_EQ(stats.quarantined, stats.quarantine_scrubbed + stats.quarantine_destroyed);
  EXPECT_EQ(stats.quarantine_destroyed, 0u) << "async crew must scrub, not destroy";
  EXPECT_EQ(stats.quarantined_now, 0u);
  // Every shell ever created is parked somewhere clean; none leaked through
  // the quarantine path.
  EXPECT_EQ(pool.TotalFreeShells() + pool.TotalAffineShells(), stats.fresh_creates);
}

// Per-key quota overrides: three tiers submitting against a parked worker,
// each key capped by its own resolved quota (premium and free are explicit
// overrides; standard rides the key_quota fallback).
TEST(Concurrency, ExecutorKeyQuotaOverridesGiveTieredAdmission) {
  wasp::Runtime runtime;
  wasp::ExecutorOptions options;
  options.workers = 1;
  options.max_queue_depth = 32;
  options.block_when_full = false;
  options.key_quota = 2;  // the standard tier's (fallback) cap
  options.key_quota_overrides = {{"premium", 4}, {"free", 1}};
  wasp::Executor executor(&runtime, options);
  EXPECT_EQ(executor.options().QuotaFor("premium"), 4u);
  EXPECT_EQ(executor.options().QuotaFor("standard"), 2u);
  EXPECT_EQ(executor.options().QuotaFor("free"), 1u);

  std::promise<void> gate;
  auto gated = executor.SubmitTask(GateTask(gate.get_future().share()));
  AwaitWorkerParked(executor);

  auto noop = [] { return wasp::RunOutcome{}; };
  std::vector<std::future<wasp::RunOutcome>> accepted;
  const struct {
    const char* key;
    size_t quota;
  } tiers[] = {{"premium", 4}, {"standard", 2}, {"free", 1}};
  for (const auto& tier : tiers) {
    for (size_t i = 0; i < tier.quota; ++i) {
      std::future<wasp::RunOutcome> future;
      ASSERT_TRUE(executor.TrySubmitTask(noop, &future, tier.key))
          << tier.key << " submission " << i << " under its quota was rejected";
      accepted.push_back(std::move(future));
    }
    // One over the tier's cap: quota-classified rejection.
    std::future<wasp::RunOutcome> rejected;
    wasp::Admission admission = wasp::Admission::kAccepted;
    EXPECT_FALSE(executor.TrySubmitTask(noop, &rejected, tier.key,
                                        wasp::KeyClass::kLatency, &admission));
    EXPECT_EQ(admission, wasp::Admission::kQuotaExceeded) << tier.key;
    EXPECT_EQ(executor.KeyLoad(tier.key), tier.quota);
  }
  EXPECT_EQ(executor.stats().quota_rejected, 3u);

  gate.set_value();
  gated.get();
  for (auto& future : accepted) {
    future.get();
  }
}

}  // namespace
