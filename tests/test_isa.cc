// Assembler / disassembler / encoding tests.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/disassembler.h"
#include "src/isa/isa.h"

namespace {

TEST(Assembler, EmptyImageHasLoadAddrEntry) {
  auto image = visa::Assemble("start:\n  hlt\n");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->load_addr, 0x8000u);
  EXPECT_EQ(image->entry, 0x8000u);
  EXPECT_EQ(image->bytes.size(), 1u);
  EXPECT_EQ(image->bytes[0], static_cast<uint8_t>(visa::Op::kHlt));
}

TEST(Assembler, OrgChangesBase) {
  auto image = visa::Assemble(".org 0x10000\nstart:\n  hlt\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->load_addr, 0x10000u);
  EXPECT_EQ(image->entry, 0x10000u);
}

TEST(Assembler, EquAndExpressions) {
  auto image = visa::Assemble(R"(
.equ BASE, 0x100
.equ OFF, 8
start:
  mov r0, BASE+OFF
  mov r1, BASE-1
  hlt
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  int size = 0;
  auto insn = visa::Decode(image->bytes.data(), image->bytes.size(), 0, &size);
  ASSERT_TRUE(insn.ok());
  EXPECT_EQ(insn->imm, 0x108);
}

TEST(Assembler, DataDirectives) {
  auto image = visa::Assemble(R"(
start:
  hlt
data:
  .byte 1, 2, 255
  .word 0x1234
  .dword 0xdeadbeef
  .quad 0x1122334455667788
  .asciz "hi"
  .space 4
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto data = image->Symbol("data");
  ASSERT_TRUE(data.ok());
  const uint64_t off = *data - image->load_addr;
  EXPECT_EQ(image->bytes[off], 1);
  EXPECT_EQ(image->bytes[off + 2], 255);
  EXPECT_EQ(image->bytes[off + 3], 0x34);  // .word little-endian
  EXPECT_EQ(image->bytes[off + 5], 0xef);  // .dword
  EXPECT_EQ(image->bytes[off + 9 + 7], 0x11);  // .quad high byte
  EXPECT_EQ(image->bytes[off + 17], 'h');
  EXPECT_EQ(image->bytes[off + 19], 0);  // NUL
  EXPECT_EQ(image->bytes.size(), off + 20 + 4);
}

TEST(Assembler, AlignPads) {
  auto image = visa::Assemble("start:\n  hlt\n  .align 8\nd:\n  .quad 1\n");
  ASSERT_TRUE(image.ok());
  auto d = image->Symbol("d");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d % 8, 0u);
}

TEST(Assembler, LabelArithmeticInDirectives) {
  auto image = visa::Assemble(R"(
start:
  hlt
tab:
  .quad 1, 2, 3
tab_end:
size:
  .word tab_end-tab
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto size_at = image->Symbol("size");
  ASSERT_TRUE(size_at.ok());
  const uint64_t off = *size_at - image->load_addr;
  EXPECT_EQ(image->bytes[off], 24);
}

TEST(Assembler, ForwardAndBackwardBranches) {
  auto image = visa::Assemble(R"(
start:
loop:
  add r0, 1
  cmp r0, 3
  jl loop
  jmp done
  brk
done:
  hlt
)");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
}

TEST(Assembler, ErrorsAreDiagnosed) {
  EXPECT_FALSE(visa::Assemble("bogus r0, r1\n").ok());
  EXPECT_FALSE(visa::Assemble("mov r99, 1\n").ok());
  EXPECT_FALSE(visa::Assemble("jmp nowhere\n").ok());
  EXPECT_FALSE(visa::Assemble("x:\nx:\n  hlt\n").ok());  // duplicate label
  EXPECT_FALSE(visa::Assemble("  ldw r0, r1\n").ok());   // not a memory operand
  EXPECT_FALSE(visa::Assemble("  cset r0, zz\n").ok());  // bad condition
  EXPECT_FALSE(visa::Assemble("  ljmp bogus, x\nx:\n").ok());
}

TEST(Assembler, CommentsAndWhitespace) {
  auto image = visa::Assemble(
      "; leading comment\nstart:  hlt  ; trailing\n# hash comment\n");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->bytes.size(), 1u);
}

// Round-trip: assemble -> disassemble -> compare mnemonics.
TEST(Disassembler, RoundTripsCoreInstructions) {
  const char* source = R"(
start:
  mov r0, 42
  mov r1, r0
  ldw r2, [r1+8]
  stw [r1+8], r2
  ld8 r3, [r2+0]
  st64 [r2-4], r3
  lea r4, [r1+16]
  add r0, r1
  sub r0, 5
  imul r0, r1
  udiv r0, r1
  cmp r0, 7
  test r0, r1
  cset r5, eq
  push r0
  pop r1
  in r0, 0x10
  out 0x10, r0
  rdtsc r6
  not r0
  neg r1
  hlt
)";
  auto image = visa::Assemble(source);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  const std::string listing = visa::Disassemble(*image);
  for (const char* expect :
       {"mov r0, 42", "mov r1, r0", "ldw r2, [r1+8]", "stw [r1+8], r2", "ld8 r3, [r2]",
        "st64 [r2-4], r3", "lea r4, [r1+16]", "add r0, r1", "sub r0, 5", "imul r0, r1",
        "udiv r0, r1", "cmp r0, 7", "test r0, r1", "cset r5, eq", "push r0", "pop r1",
        "rdtsc r6", "not r0", "neg r1", "hlt"}) {
    EXPECT_NE(listing.find(expect), std::string::npos) << "missing: " << expect
                                                       << "\n" << listing;
  }
}

TEST(Decode, RejectsInvalidOpcode) {
  const uint8_t bytes[] = {0xff};
  int size = 0;
  EXPECT_FALSE(visa::Decode(bytes, 1, 0, &size).ok());
}

TEST(Decode, RejectsTruncatedInstruction) {
  const uint8_t bytes[] = {static_cast<uint8_t>(visa::Op::kMovRi), 0x00};
  int size = 0;
  EXPECT_FALSE(visa::Decode(bytes, 2, 0, &size).ok());
}

TEST(InsnSize, MatchesEncodedLayout) {
  EXPECT_EQ(visa::InsnSize(visa::Op::kHlt), 1);
  EXPECT_EQ(visa::InsnSize(visa::Op::kMovRr), 2);
  EXPECT_EQ(visa::InsnSize(visa::Op::kMovRi), 10);
  EXPECT_EQ(visa::InsnSize(visa::Op::kAddRi), 6);
  EXPECT_EQ(visa::InsnSize(visa::Op::kJmp), 5);
  EXPECT_EQ(visa::InsnSize(visa::Op::kJcc), 6);
  EXPECT_EQ(visa::InsnSize(visa::Op::kIn), 4);
}

TEST(Image, PadToGrowsWithZeros) {
  visa::Image image;
  image.bytes = {1, 2, 3};
  image.PadTo(10);
  EXPECT_EQ(image.bytes.size(), 10u);
  EXPECT_EQ(image.bytes[9], 0u);
  image.PadTo(5);  // never shrinks
  EXPECT_EQ(image.bytes.size(), 10u);
}

}  // namespace
