// Build-time ABI invariants, checked statically in one cheap TU.
//
// The hypercall port numbers and the guest physical layout in src/wasp/abi.h
// are a wire contract between the compiler (vcc emits `out PORT, r0`
// sequences), the runtime (wasp dispatches on the port number), and every
// snapshot ever taken (snapshots bake in the guest layout).  The image header
// defaults in src/isa/image.h are likewise baked into boot stubs.  A refactor
// that silently renumbers any of these corrupts existing images and
// snapshots, so this TU fails the build the moment one moves.
#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

#include "src/isa/image.h"
#include "src/wasp/abi.h"

namespace {

// --- Hypercall port numbers (wire contract with vcc-emitted code) -----------
static_assert(wasp::kHcExit == 1, "exit port is baked into every CRT stub");
static_assert(wasp::kHcConsole == 2);
static_assert(wasp::kHcSnapshot == 3);
static_assert(wasp::kHcGetData == 4);
static_assert(wasp::kHcReturnData == 5);
static_assert(wasp::kHcOpen == 16);
static_assert(wasp::kHcRead == 17);
static_assert(wasp::kHcWrite == 18);
static_assert(wasp::kHcClose == 19);
static_assert(wasp::kHcStat == 20);
static_assert(wasp::kHcSend == 32);
static_assert(wasp::kHcRecv == 33);

// All ports must fit in the 64-bit policy mask, 1 bit per port.
static_assert(wasp::kMaxHypercall == 64);
static_assert(wasp::kHcRecv < wasp::kMaxHypercall);
static_assert(std::is_same_v<wasp::HypercallMask, uint64_t>);

// --- Policy masks ------------------------------------------------------------
static_assert(wasp::kPolicyDenyAll == 0, "virtine keyword means default-deny");
static_assert(wasp::kPolicyAllowAll == ~0ULL);
static_assert(wasp::kPolicyFileIo ==
              (wasp::MaskOf(wasp::kHcOpen) | wasp::MaskOf(wasp::kHcRead) |
               wasp::MaskOf(wasp::kHcWrite) | wasp::MaskOf(wasp::kHcClose) |
               wasp::MaskOf(wasp::kHcStat)));
static_assert(wasp::kPolicyStream == (wasp::MaskOf(wasp::kHcSend) | wasp::MaskOf(wasp::kHcRecv)));
static_assert(wasp::kPolicyManaged == (wasp::MaskOf(wasp::kHcSnapshot) |
                                       wasp::MaskOf(wasp::kHcGetData) |
                                       wasp::MaskOf(wasp::kHcReturnData)));
// File I/O and stream sets are disjoint and neither implicitly grants exit.
static_assert((wasp::kPolicyFileIo & wasp::kPolicyStream) == 0);
static_assert((wasp::kPolicyFileIo & wasp::MaskOf(wasp::kHcExit)) == 0);

// --- Guest physical layout ---------------------------------------------------
// arg page < boot info < real-mode stack < image load, and the arg page must
// not overrun the boot info block.
static_assert(wasp::kArgPageAddr == 0x0);
static_assert(wasp::kBootInfoAddr == 0x500);
static_assert(wasp::kRealModeStackTop == 0x7000);
static_assert(wasp::kImageLoadAddr == 0x8000, "paper: images load at 0x8000");
static_assert(wasp::kArgPageAddr + wasp::kArgPageSize <= wasp::kBootInfoAddr,
              "arg page must end before the boot info block");
static_assert(wasp::kArgBufOffset < wasp::kArgPageSize);
static_assert(wasp::kBootFlagSnapshot == 1);

// --- Image header defaults ---------------------------------------------------
static_assert(visa::kDefaultLoadAddr == wasp::kImageLoadAddr,
              "isa and wasp must agree on the load address");

TEST(BuildSanity, ImageDefaultsMatchAbi) {
  visa::Image img;
  EXPECT_EQ(img.load_addr, wasp::kImageLoadAddr);
  EXPECT_EQ(img.entry, wasp::kImageLoadAddr);
  EXPECT_EQ(img.size(), 0u);
}

TEST(BuildSanity, ImageSymbolLookup) {
  visa::Image img;
  img.symbols["main"] = wasp::kImageLoadAddr + 0x10;
  auto hit = img.Symbol("main");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), wasp::kImageLoadAddr + 0x10);
  EXPECT_FALSE(img.Symbol("nope").ok());
}

TEST(BuildSanity, PadToNeverShrinks) {
  visa::Image img;
  img.bytes = {1, 2, 3};
  img.PadTo(8);
  EXPECT_EQ(img.size(), 8u);
  img.PadTo(4);  // smaller than current size: no-op
  EXPECT_EQ(img.size(), 8u);
  EXPECT_EQ(img.bytes[2], 3);
  EXPECT_EQ(img.bytes[7], 0);
}

}  // namespace
