// Concurrency tests for the executor-backed HTTP serving stack
// (vnet::ConcurrentHttpServer): N-thread closed-loop and open-loop
// trace-replay runs in all three ServeModes, response correctness per
// connection, monotone aggregate counters, bounded-admission load shedding
// (503), and drain-on-destruction.  Run under TSan (TSAN=1 ./ci.sh) to
// check the synchronization itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/wasp/channel.h"
#include "src/wasp/runtime.h"

namespace {

constexpr const char* kRequest = "GET /file.txt HTTP/1.0\r\n\r\n";
constexpr int kBodySize = 512;

std::string DrainToString(wasp::ByteChannel& channel) {
  auto bytes = channel.host().Drain();
  return std::string(bytes.begin(), bytes.end());
}

class ConcurrentServerModeTest : public ::testing::TestWithParam<vnet::ServeMode> {
 protected:
  ConcurrentServerModeTest() { files_.PutFile("/file.txt", std::string(kBodySize, 'q')); }

  wasp::Runtime runtime_;
  wasp::HostEnv files_;
};

TEST_P(ConcurrentServerModeTest, ClosedLoopServesEveryConnectionCorrectly) {
  vnet::ConcurrentServerOptions options;
  options.lanes = 4;
  options.max_queue_depth = 16;
  options.block_when_full = true;
  vnet::ConcurrentHttpServer server(&runtime_, &files_, options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        wasp::ByteChannel channel;
        channel.host().WriteString(kRequest);
        auto stats = server.SubmitConnection(channel, GetParam()).get();
        if (!stats.ok() || stats->status != 200) {
          wrong.fetch_add(1);
          continue;
        }
        const std::string response = DrainToString(channel);
        if (response.find("200 OK") == std::string::npos ||
            response.find(std::string(kBodySize, 'q')) == std::string::npos) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(wrong.load(), 0);

  const vnet::ServerCounters ctr = server.counters(GetParam());
  const uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(ctr.accepted, total);
  EXPECT_EQ(ctr.completed, total);
  EXPECT_EQ(ctr.status_2xx, total);
  EXPECT_EQ(ctr.rejected, 0u);
  EXPECT_EQ(ctr.errors, 0u);
  // The executor's completed counter is incremented after the connection's
  // future resolves; give the worker a beat to publish the last one.
  for (int i = 0; i < 5000 && server.executor_stats().completed < total; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const wasp::ExecutorStats xstats = server.executor_stats();
  EXPECT_EQ(xstats.submitted, total);
  EXPECT_EQ(xstats.completed, total);
  EXPECT_EQ(xstats.rejected, 0u);

  // Counters are monotone: more traffic only ever grows them.
  wasp::ByteChannel channel;
  channel.host().WriteString(kRequest);
  ASSERT_TRUE(server.SubmitConnection(channel, GetParam()).get().ok());
  const vnet::ServerCounters after = server.counters(GetParam());
  EXPECT_EQ(after.accepted, ctr.accepted + 1);
  EXPECT_EQ(after.completed, ctr.completed + 1);
  EXPECT_GE(after.status_2xx, ctr.status_2xx);
  EXPECT_GE(after.modeled_cycles, ctr.modeled_cycles);
}

TEST_P(ConcurrentServerModeTest, TraceReplayServesEveryArrival) {
  vnet::ConcurrentServerOptions options;
  options.lanes = 4;
  options.max_queue_depth = 0;  // unbounded: the open loop must not shed
  vnet::ConcurrentHttpServer server(&runtime_, &files_, options);

  // A small ramp-burst-ramp trace (~22 arrivals).
  const std::vector<vnet::LoadPhase> phases = {{4, 1}, {14, 1}, {4, 1}};
  // Channels must outlive the futures; one per arrival.
  const std::vector<double> arrivals = vnet::GenerateArrivalTrace(phases, 9);
  std::vector<wasp::ByteChannel> channels(arrivals.size());
  auto result = vnet::ReplayTrace(
      phases,
      [&](size_t i) {
        channels[i].host().WriteString(kRequest);
        std::future<vbase::Result<vnet::ServeStats>> stats =
            server.SubmitConnection(channels[i], GetParam());
        // Adapt the ServeStats future to the loadgen's service-latency
        // currency on a deferred thread so the replay loop never blocks.
        return std::async(std::launch::deferred,
                          [&channels, i, stats = std::move(stats)]() mutable -> double {
                            auto s = stats.get();
                            if (!s.ok() || s->status != 200) {
                              return -1.0;
                            }
                            auto response = channels[i].host().Drain();
                            return response.size() >= static_cast<size_t>(kBodySize)
                                       ? static_cast<double>(s->wall_ns) / 1e3
                                       : -1.0;
                          });
      },
      9);
  EXPECT_EQ(result.arrivals_us.size(), arrivals.size());
  EXPECT_EQ(result.service_us.size(), arrivals.size());
  EXPECT_EQ(result.failures, 0u);

  const vnet::ServerCounters ctr = server.counters(GetParam());
  EXPECT_EQ(ctr.accepted, arrivals.size());
  EXPECT_EQ(ctr.completed, arrivals.size());
  EXPECT_EQ(ctr.status_2xx, arrivals.size());
  EXPECT_EQ(ctr.rejected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ConcurrentServerModeTest,
                         ::testing::Values(vnet::ServeMode::kNative,
                                           vnet::ServeMode::kVirtine,
                                           vnet::ServeMode::kVirtineSnapshot),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case vnet::ServeMode::kNative: return "native";
                             case vnet::ServeMode::kVirtine: return "virtine";
                             default: return "virtine_snapshot";
                           }
                         });

TEST(ConcurrentServer, RejectModeShedsOverflowWith503) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/file.txt", std::string(kBodySize, 'q'));
  vnet::ConcurrentServerOptions options;
  options.lanes = 1;
  options.max_queue_depth = 1;
  options.block_when_full = false;  // shed overflow
  vnet::ConcurrentHttpServer server(&runtime, &files, options);

  // Plug the single lane: a connection with no request bytes blocks the
  // handler in recv until we feed it.
  wasp::ByteChannel plug;
  auto plug_future = server.SubmitConnection(plug, vnet::ServeMode::kNative);
  // Wait until the worker picked the plug up (queue empty, one accepted).
  for (int i = 0; i < 5000 && server.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), 0u);

  // One connection fills the queue; the next must be shed with a 503.
  wasp::ByteChannel queued;
  queued.host().WriteString(kRequest);
  auto queued_future = server.SubmitConnection(queued, vnet::ServeMode::kNative);
  wasp::ByteChannel shed;
  shed.host().WriteString(kRequest);
  auto shed_future = server.SubmitConnection(shed, vnet::ServeMode::kNative);
  ASSERT_EQ(shed_future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto shed_stats = shed_future.get();
  ASSERT_TRUE(shed_stats.ok());
  EXPECT_EQ(shed_stats->status, 503);
  const std::string shed_response = DrainToString(shed);
  EXPECT_NE(shed_response.find("HTTP/1.1 503"), std::string::npos);

  // Unblock the plug; the accepted connections complete normally.
  plug.host().WriteString(kRequest);
  auto plug_stats = plug_future.get();
  ASSERT_TRUE(plug_stats.ok());
  EXPECT_EQ(plug_stats->status, 200);
  auto queued_stats = queued_future.get();
  ASSERT_TRUE(queued_stats.ok());
  EXPECT_EQ(queued_stats->status, 200);

  const vnet::ServerCounters ctr = server.counters(vnet::ServeMode::kNative);
  EXPECT_EQ(ctr.accepted, 2u);
  EXPECT_EQ(ctr.rejected, 1u);
  EXPECT_EQ(ctr.status_2xx, 2u);
  const wasp::ExecutorStats xstats = server.executor_stats();
  EXPECT_EQ(xstats.rejected, 1u);
  EXPECT_EQ(xstats.submitted, 2u);
}

TEST(ConcurrentServer, RouteQuotaShedsWith429WhileOverloadSheds503) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/file.txt", std::string(kBodySize, 'q'));
  vnet::ConcurrentServerOptions options;
  options.lanes = 1;
  options.max_queue_depth = 8;
  options.block_when_full = false;
  options.key_quota = 2;
  options.route_classes["/hot"] = wasp::KeyClass::kBatch;
  vnet::ConcurrentHttpServer server(&runtime, &files, options);

  // Plug the single lane: a connection with no request bytes blocks the
  // handler in recv until we feed it.
  wasp::ByteChannel plug;
  auto plug_future = server.SubmitConnection(plug, vnet::ServeMode::kNative);
  for (int i = 0; i < 5000 && server.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.queue_depth(), 0u);

  // Two /hot connections fill that route's quota (queued, lane busy)...
  std::vector<std::unique_ptr<wasp::ByteChannel>> held;
  std::vector<std::future<vbase::Result<vnet::ServeStats>>> accepted;
  for (int i = 0; i < 2; ++i) {
    held.push_back(std::make_unique<wasp::ByteChannel>());
    held.back()->host().WriteString(kRequest);
    accepted.push_back(server.SubmitConnection(*held.back(), vnet::ServeMode::kNative, "/hot"));
  }
  // ...so the third is shed with 429: the route is over quota, the server
  // is not full (queue depth 2 of 8).
  wasp::ByteChannel quota_shed;
  quota_shed.host().WriteString(kRequest);
  auto quota_future =
      server.SubmitConnection(quota_shed, vnet::ServeMode::kNative, "/hot");
  ASSERT_EQ(quota_future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto quota_stats = quota_future.get();
  ASSERT_TRUE(quota_stats.ok());
  EXPECT_EQ(quota_stats->status, 429);
  EXPECT_NE(DrainToString(quota_shed).find("HTTP/1.1 429"), std::string::npos);

  // Other routes are untouched by /hot's quota: fill the global queue...
  for (int i = 0; i < 6; ++i) {
    held.push_back(std::make_unique<wasp::ByteChannel>());
    held.back()->host().WriteString(kRequest);
    accepted.push_back(server.SubmitConnection(*held.back(), vnet::ServeMode::kNative,
                                               "/cold" + std::to_string(i)));
  }
  ASSERT_EQ(server.queue_depth(), 8u);
  // ...and the next connection is shed with 503: global overload.
  wasp::ByteChannel overload_shed;
  overload_shed.host().WriteString(kRequest);
  auto overload_future =
      server.SubmitConnection(overload_shed, vnet::ServeMode::kNative, "/cold-extra");
  ASSERT_EQ(overload_future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto overload_stats = overload_future.get();
  ASSERT_TRUE(overload_stats.ok());
  EXPECT_EQ(overload_stats->status, 503);
  EXPECT_NE(DrainToString(overload_shed).find("HTTP/1.1 503"), std::string::npos);

  // Unblock the lane; every accepted connection completes with a 200.
  plug.host().WriteString(kRequest);
  ASSERT_TRUE(plug_future.get().ok());
  for (auto& future : accepted) {
    auto stats = future.get();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->status, 200);
  }

  const vnet::ServerCounters ctr = server.counters(vnet::ServeMode::kNative);
  EXPECT_EQ(ctr.accepted, 9u);  // plug + 2 hot + 6 cold
  EXPECT_EQ(ctr.quota_rejected, 1u);
  EXPECT_EQ(ctr.rejected, 1u);
  EXPECT_EQ(ctr.status_2xx, 9u);
  const wasp::ExecutorStats xstats = server.executor_stats();
  EXPECT_EQ(xstats.quota_rejected, 1u);
  EXPECT_EQ(xstats.rejected, 1u);
  EXPECT_EQ(xstats.submitted, 9u);
  EXPECT_EQ(xstats.dequeued_batch, 2u);  // the /hot route is batch-classed
}

TEST(ConcurrentServer, GuestFaultAnswers500WithReasonAndCountsFaulted) {
  // Every virtine invocation of this runtime takes an injected guest trap:
  // the connection must be answered with a 500 whose reason phrase names
  // the FaultKind, counted as faulted (not an error), and classified as a
  // faulted job on the executor so the route's quota slot is released.
  wasp::RuntimeOptions roptions;
  roptions.fault_plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 1.0));
  wasp::Runtime runtime(roptions);
  wasp::HostEnv files;
  files.PutFile("/file.txt", std::string(kBodySize, 'q'));
  vnet::ConcurrentServerOptions options;
  options.lanes = 2;
  vnet::ConcurrentHttpServer server(&runtime, &files, options);

  wasp::ByteChannel channel;
  channel.host().WriteString(kRequest);
  auto stats = server.SubmitConnection(channel, vnet::ServeMode::kVirtine).get();
  // A faulted invocation is a *served* connection (the client got an
  // answer), not a server error.
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status, 500);
  EXPECT_EQ(stats->fault, wasp::FaultKind::kGuestTrap);
  const std::string response = DrainToString(channel);
  EXPECT_NE(response.find("HTTP/1.1 500 guest-trap"), std::string::npos) << response;

  const vnet::ServerCounters ctr = server.counters(vnet::ServeMode::kVirtine);
  EXPECT_EQ(ctr.accepted, 1u);
  EXPECT_EQ(ctr.completed, 1u);
  EXPECT_EQ(ctr.faulted, 1u);
  EXPECT_EQ(ctr.status_5xx, 1u);
  EXPECT_EQ(ctr.errors, 0u);
  // The executor saw a faulted job, not a completion (the worker publishes
  // the classification after the future resolves; give it a beat).
  for (int i = 0; i < 5000 && server.executor_stats().faulted < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const wasp::ExecutorStats xstats = server.executor_stats();
  EXPECT_EQ(xstats.submitted, 1u);
  EXPECT_EQ(xstats.faulted, 1u);
  EXPECT_EQ(xstats.completed, 0u);
  // The faulted shell was quarantined, never returned to the free pool raw.
  EXPECT_EQ(runtime.pool().stats().quarantined, 1u);

  // Native mode bypasses the virtine, so the same server still serves it
  // even under a total guest-fault storm.
  wasp::ByteChannel native;
  native.host().WriteString(kRequest);
  auto native_stats = server.SubmitConnection(native, vnet::ServeMode::kNative).get();
  ASSERT_TRUE(native_stats.ok());
  EXPECT_EQ(native_stats->status, 200);
}

TEST(ConcurrentServer, BreakerShedsFast429WithRetryAfter) {
  // A route whose every invocation faults must trip its circuit breaker and
  // then shed with a fast 429 + Retry-After — no shell burned on a key that
  // is currently killing every invocation.
  wasp::RuntimeOptions roptions;
  roptions.fault_plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 1.0));
  wasp::Runtime runtime(roptions);
  wasp::HostEnv files;
  files.PutFile("/file.txt", std::string(kBodySize, 'q'));
  vnet::ConcurrentServerOptions options;
  options.lanes = 1;
  options.recovery.breaker_enabled = true;
  options.recovery.breaker_min_samples = 4;  // EWMA(0.2): 1 - 0.8^4 = 0.59 >= 0.5
  options.recovery.breaker_open_sheds = 2;
  options.recovery.retry_after_s = 7;
  vnet::ConcurrentHttpServer server(&runtime, &files, options);

  // Four sequential faulting connections trip the breaker at the 4th
  // recorded attempt.  The worker records the attempt after the connection
  // future resolves, so poll the executor between submissions.
  for (int i = 0; i < 4; ++i) {
    wasp::ByteChannel channel;
    channel.host().WriteString(kRequest);
    auto stats = server.SubmitConnection(channel, vnet::ServeMode::kVirtine, "vol").get();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->status, 500);
    for (int spin = 0;
         spin < 5000 && server.executor_stats().faulted < static_cast<uint64_t>(i) + 1;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(server.executor_stats().breaker_opens, 1u);

  // Open: the next breaker_open_sheds connections shed fast-429 with the
  // advertised Retry-After, burning no shells.
  for (int i = 0; i < 2; ++i) {
    wasp::ByteChannel shed;
    shed.host().WriteString(kRequest);
    auto stats = server.SubmitConnection(shed, vnet::ServeMode::kVirtine, "vol").get();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->status, 429);
    const std::string response = DrainToString(shed);
    EXPECT_NE(response.find("HTTP/1.1 429"), std::string::npos) << response;
    EXPECT_NE(response.find("Retry-After: 7"), std::string::npos) << response;
  }
  EXPECT_EQ(server.counters(vnet::ServeMode::kVirtine).breaker_rejected, 2u);
  EXPECT_EQ(runtime.pool().stats().quarantined, 4u);  // sheds touched no shell

  // The cooldown count elapsed: the next connection is the half-open probe.
  // It faults, so the breaker re-opens and the follow-up sheds again.
  wasp::ByteChannel probe;
  probe.host().WriteString(kRequest);
  auto probe_stats = server.SubmitConnection(probe, vnet::ServeMode::kVirtine, "vol").get();
  ASSERT_TRUE(probe_stats.ok());
  EXPECT_EQ(probe_stats->status, 500);
  for (int spin = 0; spin < 5000 && server.executor_stats().faulted < 5; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wasp::ByteChannel again;
  again.host().WriteString(kRequest);
  auto again_stats = server.SubmitConnection(again, vnet::ServeMode::kVirtine, "vol").get();
  ASSERT_TRUE(again_stats.ok());
  EXPECT_EQ(again_stats->status, 429);
  EXPECT_EQ(server.executor_stats().breaker_opens, 2u);

  // A different route is untouched by the storm route's breaker.
  wasp::ByteChannel other;
  other.host().WriteString(kRequest);
  auto other_stats = server.SubmitConnection(other, vnet::ServeMode::kNative, "ok").get();
  ASSERT_TRUE(other_stats.ok());
  EXPECT_EQ(other_stats->status, 200);
}

TEST(ConcurrentServer, DestructionDrainsAcceptedConnections) {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/file.txt", std::string(kBodySize, 'q'));
  constexpr int kConnections = 6;
  std::vector<wasp::ByteChannel> channels(kConnections);
  std::vector<std::future<vbase::Result<vnet::ServeStats>>> futures;
  {
    vnet::ConcurrentServerOptions options;
    options.lanes = 2;
    vnet::ConcurrentHttpServer server(&runtime, &files, options);
    for (int i = 0; i < kConnections; ++i) {
      channels[static_cast<size_t>(i)].host().WriteString(kRequest);
      futures.push_back(server.SubmitConnection(channels[static_cast<size_t>(i)],
                                                vnet::ServeMode::kVirtineSnapshot));
    }
    // Server destroyed here with connections still queued/in flight.
  }
  for (int i = 0; i < kConnections; ++i) {
    auto& future = futures[static_cast<size_t>(i)];
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "connection " << i << " not drained by the destructor";
    auto stats = future.get();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->status, 200);
  }
}

}  // namespace
