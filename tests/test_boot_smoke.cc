// End-to-end smoke tests: boot each execution environment, run fib through
// the full Wasp invoke path, and check the boot milestones that feed the
// Table 1 reproduction.
#include <gtest/gtest.h>

#include "src/isa/disassembler.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

uint64_t FibRef(uint64_t n) { return n < 2 ? n : FibRef(n - 1) + FibRef(n - 2); }

class BootSmokeTest : public ::testing::TestWithParam<vrt::Env> {};

TEST_P(BootSmokeTest, FibRunsInEveryEnvironment) {
  const vrt::Env env = GetParam();
  auto image = vrt::BuildImage(env, vrt::FibSource());
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = std::string("fib-smoke-") + vrt::EnvName(env);
  spec.word_bytes = vrt::WordBytes(env);

  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  auto result = fib.Call(20);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(*result), FibRef(20));
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, BootSmokeTest,
                         ::testing::Values(vrt::Env::kReal16, vrt::Env::kProt32,
                                           vrt::Env::kLong64),
                         [](const auto& param_info) { return vrt::EnvName(param_info.param); });

TEST(BootMilestones, Long64BootLogsEveryTable1Component) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  auto vm = vkvm::Vm::Create(vkvm::VmConfig{});
  ASSERT_TRUE(vm->LoadBlob(image->load_addr, image->bytes.data(), image->bytes.size()).ok());
  uint64_t boot_info[2] = {vm->memory().size(), 0};
  ASSERT_TRUE(vm->memory().Write(wasp::kBootInfoAddr, boot_info, sizeof(boot_info)).ok());
  vm->ResetVcpu(image->entry);
  vm->cpu().set_reg(visa::kSp, wasp::kRealModeStackTop);
  // Argument page: argc = 1, arg0 = 5 (fib needs one argument).
  uint64_t args[3] = {0, 1, 5};
  ASSERT_TRUE(vm->memory().Write(wasp::kArgPageAddr, args, sizeof(args)).ok());
  auto run = vm->Run();
  ASSERT_EQ(run.reason, vkvm::ExitReason::kHlt) << run.fault;

  std::vector<vhw::BootEvent> events;
  for (const auto& m : vm->cpu().milestones()) {
    events.push_back(m.event);
  }
  const std::vector<vhw::BootEvent> expected = {
      vhw::BootEvent::kFirstInsn,  vhw::BootEvent::kLgdtReal, vhw::BootEvent::kCr0PeSet,
      vhw::BootEvent::kJump32,     vhw::BootEvent::kLgdtProt, vhw::BootEvent::kEferLmeSet,
      vhw::BootEvent::kCr0PgSet,   vhw::BootEvent::kJump64,   vhw::BootEvent::kHlt,
  };
  EXPECT_EQ(events, expected);

  // The identity map should dominate: its charge covers the 512 PDE stores
  // plus EPT construction (Table 1's ~28 K cycles).
  const auto& ms = vm->cpu().milestones();
  uint64_t idmap_cost = 0;
  for (size_t i = 1; i < ms.size(); ++i) {
    if (ms[i].event == vhw::BootEvent::kCr0PgSet) {
      idmap_cost = ms[i].cycles - ms[i - 1].cycles;
    }
  }
  EXPECT_GT(idmap_cost, 20000u);
  EXPECT_LT(idmap_cost, 45000u);
}

TEST(Marshalling, TwoArgumentAddition) {
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::Add2Source());
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  wasp::VirtineFunc<int64_t(int64_t, int64_t)> add(&runtime, spec);
  auto r = add.Call(1234, 4321);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 5555);
}

}  // namespace
