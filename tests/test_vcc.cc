// Compiler tests: language semantics (via end-to-end execution in a
// virtine), the virtine annotation pipeline, call-graph cutting, and
// policy derivation.
#include <gtest/gtest.h>

#include "src/vcc/vcc.h"
#include "src/vrt/env.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

// Compiles `source` (entry `main`) and runs main(args...) in a long64
// virtine, returning the result word.
int64_t RunProgram(const std::string& source, std::vector<int64_t> args = {},
                   std::string* console = nullptr, wasp::HypercallMask policy = 0) {
  auto image = vcc::CompileProgram(source, "main", vrt::Env::kLong64);
  if (!image.ok()) {
    ADD_FAILURE() << "compile failed: " << image.status().ToString();
    return INT64_MIN;
  }
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.policy = policy;
  wasp::ArgPacker packer(8);
  for (int64_t a : args) {
    packer.AddWord(static_cast<uint64_t>(a));
  }
  spec.args_page = packer.Finish();
  auto outcome = runtime.Invoke(spec);
  if (!outcome.status.ok()) {
    ADD_FAILURE() << "run failed: " << outcome.status.ToString();
    return INT64_MIN;
  }
  if (console != nullptr) {
    *console = outcome.console;
  }
  return static_cast<int64_t>(outcome.result_word);
}

int64_t RunVlibcProgram(const std::string& source, std::vector<int64_t> args = {},
                        std::string* console = nullptr,
                        wasp::HypercallMask policy = wasp::MaskOf(wasp::kHcConsole)) {
  return RunProgram(vrt::VlibcSource() + source, std::move(args), console, policy);
}

TEST(VccSemantics, ArithmeticAndPrecedence) {
  EXPECT_EQ(RunProgram("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(RunProgram("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(RunProgram("int main() { return 7 / 2 + 7 % 2; }"), 4);
  EXPECT_EQ(RunProgram("int main() { return -5 + 3; }"), -2);
  EXPECT_EQ(RunProgram("int main() { return 1 << 10; }"), 1024);
  EXPECT_EQ(RunProgram("int main() { return -16 >> 2; }"), -4);
  EXPECT_EQ(RunProgram("int main() { return (0xff & 0x0f) | 0x30; }"), 0x3f);
  EXPECT_EQ(RunProgram("int main() { return ~0 + 2; }"), 1);
}

TEST(VccSemantics, ComparisonsAndLogic) {
  EXPECT_EQ(RunProgram("int main() { return 3 < 5; }"), 1);
  EXPECT_EQ(RunProgram("int main() { return -1 < 1; }"), 1);
  EXPECT_EQ(RunProgram("int main() { return 5 <= 5 && 6 > 2; }"), 1);
  EXPECT_EQ(RunProgram("int main() { return 0 && 1 || 1; }"), 1);
  EXPECT_EQ(RunProgram("int main() { return !42; }"), 0);
  EXPECT_EQ(RunProgram("int main() { return 1 ? 10 : 20; }"), 10);
  EXPECT_EQ(RunProgram("int main() { return 0 ? 10 : 20; }"), 20);
}

TEST(VccSemantics, ShortCircuitSideEffects) {
  const char* src = R"(
    int g = 0;
    int bump() { g = g + 1; return 1; }
    int main() {
      0 && bump();
      1 || bump();
      return g;
    })";
  EXPECT_EQ(RunProgram(src), 0);
}

TEST(VccSemantics, ControlFlow) {
  const char* loop = R"(
    int main(int n) {
      int sum;
      int i;
      sum = 0;
      for (i = 1; i <= n; i = i + 1) {
        if (i % 2 == 0) {
          continue;
        }
        sum = sum + i;
      }
      return sum;
    })";
  EXPECT_EQ(RunProgram(loop, {10}), 25);  // 1+3+5+7+9

  const char* brk = R"(
    int main() {
      int i;
      i = 0;
      while (1) {
        i = i + 1;
        if (i == 7) {
          break;
        }
      }
      return i;
    })";
  EXPECT_EQ(RunProgram(brk), 7);
}

TEST(VccSemantics, RecursionFib) {
  const char* src = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main(int n) { return fib(n); })";
  EXPECT_EQ(RunProgram(src, {20}), 6765);
}

TEST(VccSemantics, PointersAndArrays) {
  const char* src = R"(
    int main() {
      int a[8];
      int *p;
      int i;
      for (i = 0; i < 8; i = i + 1) {
        a[i] = i * i;
      }
      p = a + 3;
      return *p + p[1];  // 9 + 16
    })";
  EXPECT_EQ(RunProgram(src), 25);
}

TEST(VccSemantics, CharArraysAreByteAccurate) {
  const char* src = R"(
    int main() {
      char b[4];
      b[0] = 300;        // truncates to 44
      b[1] = 1;
      return b[0] + b[1];
    })";
  EXPECT_EQ(RunProgram(src), 45);
}

TEST(VccSemantics, PointerDifference) {
  const char* src = R"(
    int main() {
      int a[10];
      int *p;
      int *q;
      p = a + 2;
      q = a + 9;
      return q - p;
    })";
  EXPECT_EQ(RunProgram(src), 7);
}

TEST(VccSemantics, GlobalsWithInitializers) {
  const char* src = R"(
    int counter = 40;
    int table[4] = {1, 2, 3, 4};
    int main() {
      counter = counter + table[2];
      return counter;
    })";
  EXPECT_EQ(RunProgram(src), 43);
}

TEST(VccSemantics, CompoundAssignAndIncDec) {
  const char* src = R"(
    int main() {
      int x;
      int i;
      x = 10;
      x += 5;
      x *= 2;
      x -= 6;   // 24
      x /= 3;   // 8
      x <<= 2;  // 32
      x >>= 1;  // 16
      x |= 3;   // 19
      x &= 0x17; // 19 & 23 = 19
      x ^= 1;   // 18
      i = 0;
      x = x + i++;  // 18, i=1
      x = x + ++i;  // 20, i=2
      return x * 10 + i;
    })";
  EXPECT_EQ(RunProgram(src), 202);
}

TEST(VccSemantics, StringLiteralsAndConsole) {
  std::string console;
  const char* src = R"(
    int main() {
      puts("hello from a virtine\n");
      print_int(-42);
      return 0;
    })";
  EXPECT_EQ(RunVlibcProgram(src, {}, &console), 0);
  EXPECT_EQ(console, "hello from a virtine\n-42");
}

TEST(VccSemantics, SizeofAndWordWidth) {
  EXPECT_EQ(RunProgram("int main() { return sizeof(int); }"), 8);
  EXPECT_EQ(RunProgram("int main() { return sizeof(char); }"), 1);
  EXPECT_EQ(RunProgram("int main() { return sizeof(int*); }"), 8);
}

TEST(VccVlibc, StringRoutines) {
  const char* src = R"(
    int main() {
      char buf[64];
      char num[24];
      strcpy(buf, "abc");
      strcat(buf, "def");
      if (strcmp(buf, "abcdef") != 0) { return 1; }
      if (strlen(buf) != 6) { return 2; }
      if (atoi("-1234") != -1234) { return 3; }
      itoa(num, 9081);
      if (strcmp(num, "9081") != 0) { return 4; }
      uitoa_hex(num, 48879);
      if (strcmp(num, "beef") != 0) { return 5; }
      memset(buf, 'x', 5);
      buf[5] = 0;
      if (strcmp(buf, "xxxxx") != 0) { return 6; }
      return 42;
    })";
  EXPECT_EQ(RunVlibcProgram(src), 42);
}

TEST(VccVlibc, MallocBumpAllocator) {
  const char* src = R"(
    int main() {
      char *a;
      char *b;
      a = malloc(100);
      b = malloc(100);
      if (b - a < 100) { return 1; }
      memset(a, 7, 100);
      memset(b, 9, 100);
      if (a[99] != 7) { return 2; }
      if (b[0] != 9) { return 3; }
      return 0;
    })";
  EXPECT_EQ(RunVlibcProgram(src), 0);
}

// --- Virtine annotations -----------------------------------------------------

TEST(VccVirtines, AnnotatedFunctionCompilesAndRuns) {
  const char* src = R"(
    virtine int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    })";
  auto virtines = vcc::CompileVirtines(src);
  ASSERT_TRUE(virtines.ok()) << virtines.status().ToString();
  ASSERT_EQ(virtines->size(), 1u);
  EXPECT_EQ((*virtines)[0].name, "fib");
  EXPECT_EQ((*virtines)[0].policy, wasp::kPolicyDenyAll);
  EXPECT_EQ((*virtines)[0].num_args, 1);

  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &(*virtines)[0].image;
  spec.key = "fib-anno";
  spec.policy = (*virtines)[0].policy;
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);
  auto r = fib.Call(15);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 610);
}

TEST(VccVirtines, PolicyKeywords) {
  const char* src = R"(
    virtine int a() { return 1; }
    virtine_permissive int b() { return 2; }
    virtine_config(0x30006) int c() { return 3; }
    int helper() { return 4; }
  )";
  auto virtines = vcc::CompileVirtines(src);
  ASSERT_TRUE(virtines.ok()) << virtines.status().ToString();
  ASSERT_EQ(virtines->size(), 3u);
  EXPECT_EQ((*virtines)[0].policy, wasp::kPolicyDenyAll);
  EXPECT_EQ((*virtines)[1].policy, wasp::kPolicyAllowAll);
  EXPECT_EQ((*virtines)[2].policy, 0x30006u);
}

TEST(VccVirtines, CallGraphCutKeepsImagesSmall) {
  // `big` is unreachable from `leaf`; its code must not be packaged.
  std::string src = "virtine int leaf(int x) { return x + 1; }\n";
  src += "int big() { return ";
  for (int i = 0; i < 200; ++i) {
    src += "1 + ";
  }
  src += "0; }\n";
  src += "virtine int fat(int x) { return big() + x; }\n";
  auto virtines = vcc::CompileVirtines(src);
  ASSERT_TRUE(virtines.ok()) << virtines.status().ToString();
  ASSERT_EQ(virtines->size(), 2u);
  const auto& leaf = (*virtines)[0];
  const auto& fat = (*virtines)[1];
  EXPECT_LT(leaf.image.bytes.size() + 200, fat.image.bytes.size())
      << "dead code was not eliminated from the leaf image";
  // Virtine images stay in the ~16 KB ballpark the paper quotes.
  EXPECT_LT(leaf.image.bytes.size(), 16u * 1024);
}

TEST(VccVirtines, GeneratedHeaderContainsSpecs) {
  const char* src = "virtine int twice(int x) { return 2 * x; }";
  auto virtines = vcc::CompileVirtines(src);
  ASSERT_TRUE(virtines.ok());
  const std::string header = vcc::EmitCppHeader(*virtines, "TEST_GUARD_H_");
  EXPECT_NE(header.find("twice_image"), std::string::npos);
  EXPECT_NE(header.find("twice_spec"), std::string::npos);
  EXPECT_NE(header.find("TEST_GUARD_H_"), std::string::npos);
}

TEST(VccErrors, UsefulDiagnostics) {
  EXPECT_FALSE(vcc::CompileProgram("int main() { return x; }").ok());
  EXPECT_FALSE(vcc::CompileProgram("int main() { return f(); }").ok());
  EXPECT_FALSE(vcc::CompileProgram("int main() { return 1 }").ok());
  EXPECT_FALSE(vcc::CompileProgram("int main() { break; }").ok());
  EXPECT_FALSE(vcc::CompileProgram("virtine int g = 3; int main() { return 0; }").ok());
  EXPECT_FALSE(vcc::CompileVirtines("int main() { return 0; }").ok());  // no annotations
}

}  // namespace
