// Shared helpers for the table/figure reproduction binaries.
//
// Every binary prints (a) a header identifying the paper artifact it
// regenerates, (b) a table whose rows mirror the paper's, and (c) where the
// paper states a quantitative claim, the measured counterpart.  Latencies
// appear in two currencies: modeled cycles at the 2.69 GHz reference clock
// (deterministic, machine-independent) and measured wall time of the real
// host work.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/base/log.h"
#include "src/base/stats.h"
#include "src/base/table.h"

namespace benchutil {

inline void Header(const std::string& artifact, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline std::string Cycles(double cycles) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", cycles);
  return buf;
}

inline std::string Us(double cycles) { return vbase::Fmt(vbase::CyclesToMicros(
    static_cast<uint64_t>(cycles)), 1); }

}  // namespace benchutil

#endif  // BENCH_BENCH_UTIL_H_
