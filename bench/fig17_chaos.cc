// Figure 17 (this reproduction's addition): fault injection, shell
// quarantine, and the one-invocation blast radius.
//
// The paper's isolation story is spatial (a virtine cannot touch the host).
// This harness proves the *temporal* half for a serving platform: one
// invocation dying — guest trap, denied or illegal hypercall, worker death,
// poisoned snapshot — costs exactly that invocation.  Its shell is
// quarantined (never parked affine, never pushed to a lock-free free stack,
// readmitted only after a cleaner-crew full scrub), its key's quota slot is
// released, and every co-tenant keeps its latency.
//
// Three phases, all gated so ci.sh can smoke them:
//
// 1. Containment.  A deterministic FaultPlan kills one keyed invocation per
//    fault kind at exact invocation indices, alternating with clean
//    invocations of the same key.  Gates: every injected kind classifies on
//    RunOutcome::fault; the clean invocation after each fault is never
//    served by the faulted shell (no affine restore — the quarantined shell
//    is unreachable until scrubbed) yet still computes the right answer;
//    the quarantine and residency accounting conserve at every observation
//    and drain to quarantined_now == 0.
//
// 2. Chaos storm.  Two Vespid tenants share the platform; a seeded
//    probabilistic FaultPlan storms the victim's key (guest traps + worker
//    deaths) while the co-tenant runs the same load as in a fault-free
//    control run.  Both measured traces replay through GovernTrace's fault
//    discipline.  Gates: the victim shows a real fault rate, the co-tenant
//    faults never, and the co-tenant's p99 modeled queue wait under the
//    storm stays within 2x of its fault-free control — the blast radius is
//    one invocation, not the platform.
//
// 3. Soak (wall-clock paced).  Rounds of ReplayBurstyLoad with
//    pace_wall_clock dispatch plus an executor burst per round, under a mild
//    background fault rate.  After each round's drain the harness samples
//    the residency gauge, the quarantine gauge, the shell census, and the
//    executor's queue gauges.  Gates: executor conservation
//    (submitted == completed + faulted + queued + in_flight) at every
//    sample, all gauges return to zero at quiescence, the shell census
//    never drifts upward, and retiring the keys at the end releases every
//    resident byte.
//
// 4. Recovery.  The same 33% storm, with the PR's recovery machinery
//    engaged.  A closed-loop two-key mix (stormed victim + clean co-tenant)
//    runs twice through the real executor — retry-once on in both runs,
//    circuit breaker off (A) vs on (B) — and goodput is fault-free
//    completions per modeled lane-second.  Without the breaker every
//    stormed invocation burns a lane, dies, and destroys its shell (sync
//    quarantine), so its replacement pays vm_create; with the breaker the
//    victim's storm is shed at the door for free.  Gates: goodput with the
//    breaker >= 1.5x without; the executor's accounting law holds at every
//    mid-loop observation including across retries; and the phase-2 storm
//    trace replayed under GovernTrace's breaker discipline sheds only the
//    victim while the co-tenant's p99 stays within 2x of its fault-free
//    control.
//
//   ./fig17_chaos            # full run
//   ./fig17_chaos --quick    # CI smoke (shorter traces, same gates)
//   ./fig17_chaos --soak     # extended soak rounds (the ci.sh SOAK=1 lane)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/vjs/vjs.h"
#include "src/vnet/serverless.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/fault.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

// Asserts the residency gauge's conservation invariant on one consistent
// accounting snapshot; returns the gauge.
uint64_t CheckedResident(wasp::Pool& pool, int* failures) {
  const wasp::AffineAccounting acct = pool.affine_accounting();
  uint64_t sum = 0;
  for (const auto& gen : acct.generations) {
    sum += gen.shared_bytes + gen.private_bytes;
  }
  if (sum != acct.resident_bytes) {
    std::printf("FAIL: residency conservation violated (%llu != %llu)\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(acct.resident_bytes));
    ++*failures;
  }
  return acct.resident_bytes;
}

// Asserts the quarantine ledger's conservation invariant (exact at
// quiescence, which is when the harness samples it).
void CheckQuarantineLedger(const wasp::PoolStats& stats, int* failures) {
  if (stats.quarantined !=
      stats.quarantine_scrubbed + stats.quarantine_destroyed + stats.quarantined_now) {
    std::printf("FAIL: quarantine conservation violated (%llu != %llu + %llu + %llu)\n",
                static_cast<unsigned long long>(stats.quarantined),
                static_cast<unsigned long long>(stats.quarantine_scrubbed),
                static_cast<unsigned long long>(stats.quarantine_destroyed),
                static_cast<unsigned long long>(stats.quarantined_now));
    ++*failures;
  }
}

// Waits for the executor's gauges to settle: a future resolves before its
// worker decrements in_flight, so "all futures done" is not yet quiescence.
wasp::ExecutorStats QuiescedExecutorStats(const wasp::Executor& executor) {
  wasp::ExecutorStats stats = executor.stats();
  for (int spin = 0; spin < 2000 && (stats.queued != 0 || stats.in_flight != 0); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = executor.stats();
  }
  return stats;
}

// Asserts the executor's accounting law on one locked snapshot.
void CheckExecutorConservation(const wasp::ExecutorStats& stats, int* failures) {
  if (stats.submitted !=
      stats.completed + stats.faulted + stats.queued + stats.in_flight) {
    std::printf("FAIL: executor conservation violated "
                "(%llu != %llu + %llu + %llu + %llu)\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.faulted),
                static_cast<unsigned long long>(stats.queued),
                static_cast<unsigned long long>(stats.in_flight));
    ++*failures;
  }
}

// --- Phase 1: deterministic containment -------------------------------------

int RunContainmentPhase() {
  std::printf("\n=== Phase 1: one injected fault per kind, blast radius one ===\n");
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());

  // Fault schedule over the injector's global invocation index: 0 and 1 are
  // the cold capture and the warm affine restore; from there every even
  // index faults (consuming the key's freshly parked affine shell) and
  // every odd index must run clean on a *different* shell.
  const wasp::FaultKind kKinds[] = {
      wasp::FaultKind::kGuestTrap,       wasp::FaultKind::kPolicyDenied,
      wasp::FaultKind::kIllegalHypercall, wasp::FaultKind::kWorkerDeath,
      wasp::FaultKind::kPoisonedSnapshot,
  };
  constexpr size_t kNumKinds = sizeof(kKinds) / sizeof(kKinds[0]);
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  for (size_t i = 0; i < kNumKinds; ++i) {
    options.fault_plan.rules.push_back(
        wasp::FaultPlan::At(kKinds[i], 2 + 2 * i, "victim"));
  }
  wasp::Runtime runtime(options);

  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "victim";
  spec.use_snapshot = true;
  spec.word_bytes = 8;
  wasp::ArgPacker packer(spec.word_bytes);
  packer.AddWord(12);
  spec.args_page = packer.Finish();

  int failures = 0;
  // Warm up: cold capture, then one affine restore proving warmth exists.
  wasp::RunOutcome warm0 = runtime.Invoke(spec);
  VB_CHECK(warm0.status.ok(), warm0.status.ToString());
  wasp::RunOutcome warm1 = runtime.Invoke(spec);
  VB_CHECK(warm1.status.ok(), warm1.status.ToString());
  if (!warm1.stats.affine_restore) {
    std::printf("FAIL: warmup never produced an affine restore\n");
    ++failures;
  }

  vbase::Table table({"injected kind", "classified", "status", "clean follow-up",
                      "affine reuse"});
  for (size_t i = 0; i < kNumKinds; ++i) {
    const wasp::RunOutcome faulted = runtime.Invoke(spec);
    const bool classified = faulted.fault == kKinds[i];
    if (!classified || faulted.status.ok()) {
      std::printf("FAIL: injection %zu expected %s, got %s (status %s)\n", i,
                  wasp::FaultKindName(kKinds[i]), wasp::FaultKindName(faulted.fault),
                  faulted.status.ToString().c_str());
      ++failures;
    }
    CheckedResident(runtime.pool(), &failures);
    // The follow-up invocation of the same key must still answer correctly,
    // and must not be served by the quarantined shell: the fault consumed
    // the key's parked affine shell, so a correct pool serves this one from
    // a clean (or fresh) shell — affine_restore false is the observable
    // "never re-acquired" signal.
    const wasp::RunOutcome clean = runtime.Invoke(spec);
    const bool clean_ok = clean.status.ok() && clean.result_word == 144;
    if (!clean_ok) {
      std::printf("FAIL: follow-up after %s did not complete correctly: %s\n",
                  wasp::FaultKindName(kKinds[i]), clean.status.ToString().c_str());
      ++failures;
    }
    if (clean.stats.affine_restore) {
      std::printf("FAIL: follow-up after %s reused the quarantined affine shell\n",
                  wasp::FaultKindName(kKinds[i]));
      ++failures;
    }
    table.AddRow({wasp::FaultKindName(kKinds[i]),
                  wasp::FaultKindName(faulted.fault),
                  faulted.status.ok() ? "ok" : "non-ok",
                  clean_ok ? "correct" : "WRONG",
                  clean.stats.affine_restore ? "REUSED" : "no"});
  }
  table.Print();

  // Quiesce and audit the ledgers.
  runtime.pool().DrainCleaner();
  const wasp::PoolStats stats = runtime.pool().stats();
  CheckQuarantineLedger(stats, &failures);
  if (stats.quarantined != kNumKinds) {
    std::printf("FAIL: expected %zu quarantines, counted %llu\n", kNumKinds,
                static_cast<unsigned long long>(stats.quarantined));
    ++failures;
  }
  if (stats.quarantined_now != 0) {
    std::printf("FAIL: %llu shells still quarantined after drain\n",
                static_cast<unsigned long long>(stats.quarantined_now));
    ++failures;
  }
  if (stats.quarantine_scrubbed != kNumKinds) {
    std::printf("FAIL: the async crew should scrub every quarantined shell "
                "(%llu of %zu)\n",
                static_cast<unsigned long long>(stats.quarantine_scrubbed), kNumKinds);
    ++failures;
  }
  const wasp::FaultInjectorStats inject = runtime.fault_injector()->stats();
  uint64_t injected_total = 0;
  for (int k = 0; k < wasp::kNumFaultKinds; ++k) {
    injected_total += inject.injected[k];
  }
  if (inject.armed != kNumKinds || injected_total != kNumKinds) {
    std::printf("FAIL: injector armed %llu / injected %llu, expected %zu each\n",
                static_cast<unsigned long long>(inject.armed),
                static_cast<unsigned long long>(injected_total), kNumKinds);
    ++failures;
  }
  std::printf("\nClaim check: %zu fault kinds injected and classified; every "
              "follow-up ran clean off a non-quarantined shell; quarantine ledger "
              "%llu = %llu scrubbed + %llu destroyed + %llu pending.\n",
              kNumKinds, static_cast<unsigned long long>(stats.quarantined),
              static_cast<unsigned long long>(stats.quarantine_scrubbed),
              static_cast<unsigned long long>(stats.quarantine_destroyed),
              static_cast<unsigned long long>(stats.quarantined_now));
  return failures;
}

// --- Phase 2: chaos storm vs co-tenant latency -------------------------------

// Measures the two-tenant mix on a runtime built with `plan` and replays it
// under one governed discipline; returns the replay (tenant 0 = victim,
// tenant 1 = cotenant).
vnet::GovernedReplay MeasureStorm(const wasp::FaultPlan& plan, bool quick,
                                  wasp::PoolStats* pool_stats,
                                  wasp::FaultInjectorStats* inject_stats,
                                  int* failures, vnet::MeasuredTrace* out_trace) {
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  options.fault_plan = plan;
  wasp::Runtime runtime(options);
  vnet::Vespid vespid(&runtime);
  VB_CHECK(vespid.Register("victim", vjs::Base64ScriptSource()).ok(), "register failed");
  VB_CHECK(vespid.Register("cotenant", vjs::Base64ScriptSource()).ok(),
           "register failed");

  const double scale = quick ? 0.4 : 1.0;
  std::vector<vnet::TenantSpec> tenants(2);
  tenants[0].name = "victim";
  tenants[0].klass = wasp::KeyClass::kLatency;
  tenants[0].phases = {{1200, 0.3 * scale}};
  tenants[0].payload = std::vector<uint8_t>(256, 5);
  tenants[1].name = "cotenant";
  tenants[1].klass = wasp::KeyClass::kLatency;
  tenants[1].phases = {{600, 0.3 * scale}};
  tenants[1].payload = std::vector<uint8_t>(256, 7);

  auto trace = vespid.MeasureMultiTenant(tenants, /*concurrency=*/8, /*seed=*/42);
  VB_CHECK(trace.ok(), trace.status().ToString());

  vnet::GovernanceOptions governed;
  governed.lanes = 2;
  governed.batch_weight = 0;
  const vnet::GovernedReplay replay = vnet::GovernTrace(*trace, governed);
  if (out_trace != nullptr) {
    *out_trace = std::move(*trace);
  }

  runtime.pool().DrainCleaner();
  if (pool_stats != nullptr) {
    *pool_stats = runtime.pool().stats();
  }
  if (inject_stats != nullptr && runtime.fault_injector() != nullptr) {
    *inject_stats = runtime.fault_injector()->stats();
  }
  CheckedResident(runtime.pool(), failures);
  CheckQuarantineLedger(runtime.pool().stats(), failures);
  return replay;
}

int RunStormPhase(bool quick, vnet::MeasuredTrace* control_trace,
                  vnet::MeasuredTrace* storm_trace) {
  std::printf("\n=== Phase 2: fault storm on one key, co-tenant p99 within 2x ===\n");
  int failures = 0;

  // Control: identical tenants, no injection.
  const vnet::GovernedReplay control =
      MeasureStorm(wasp::FaultPlan{}, quick, nullptr, nullptr, &failures, control_trace);

  // Storm: seeded probabilistic guest traps + worker deaths on the victim's
  // snapshot key only.
  wasp::FaultPlan plan;
  plan.seed = 1789;
  plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 0.25, "vespid-victim"));
  plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kWorkerDeath, 0.10, "vespid-victim"));
  wasp::PoolStats pool_stats;
  wasp::FaultInjectorStats inject_stats;
  const vnet::GovernedReplay storm =
      MeasureStorm(plan, quick, &pool_stats, &inject_stats, &failures, storm_trace);

  vbase::Table table({"run", "tenant", "offered", "completed", "faulted", "fault rate",
                      "p99 wait us"});
  for (const auto& [label, replay] :
       {std::pair<const char*, const vnet::GovernedReplay*>{"control", &control},
        std::pair<const char*, const vnet::GovernedReplay*>{"storm", &storm}}) {
    for (size_t t = 0; t < replay->tenants.size(); ++t) {
      const vnet::TenantOutcome& tenant = replay->tenants[t];
      table.AddRow({label, tenant.name, std::to_string(tenant.offered),
                    std::to_string(tenant.completed), std::to_string(tenant.faulted),
                    vbase::Fmt(100.0 * tenant.fault_rate, 1) + "%",
                    vbase::Fmt(tenant.p99_queue_wait_us, 0)});
    }
  }
  table.Print();

  const vnet::TenantOutcome& victim = storm.tenants[0];
  const vnet::TenantOutcome& bystander = storm.tenants[1];
  if (victim.faulted == 0) {
    std::printf("FAIL: the storm never landed a fault on the victim\n");
    ++failures;
  }
  if (bystander.faulted != 0 || control.tenants[1].faulted != 0) {
    std::printf("FAIL: a keyed fault plan must never fault the co-tenant\n");
    ++failures;
  }
  uint64_t injected_total = 0;
  for (int k = 0; k < wasp::kNumFaultKinds; ++k) {
    injected_total += inject_stats.injected[k];
  }
  if (pool_stats.quarantined < injected_total || injected_total == 0) {
    std::printf("FAIL: every injected fault must quarantine a shell "
                "(%llu injected, %llu quarantined)\n",
                static_cast<unsigned long long>(injected_total),
                static_cast<unsigned long long>(pool_stats.quarantined));
    ++failures;
  }
  // The blast-radius gate.  The floor keeps a near-zero control p99 from
  // turning measurement noise into a spurious ratio failure.
  const double floor_us = 500.0;
  const double base_p99 = std::max(control.tenants[1].p99_queue_wait_us, floor_us);
  const double storm_p99 = bystander.p99_queue_wait_us;
  std::printf("\nClaim check: co-tenant p99 queue wait %.0f us under storm vs %.0f us "
              "control (%.2fx; gate <= 2x with a %.0f us floor); victim fault rate "
              "%.1f%%, %llu shells quarantined.\n",
              storm_p99, control.tenants[1].p99_queue_wait_us, storm_p99 / base_p99,
              floor_us, 100.0 * victim.fault_rate,
              static_cast<unsigned long long>(pool_stats.quarantined));
  if (storm_p99 > 2.0 * base_p99) {
    std::printf("FAIL: the fault storm degraded the co-tenant's p99 beyond 2x\n");
    ++failures;
  }
  return failures;
}

// --- Phase 3: wall-clock-paced soak ------------------------------------------

int RunSoakPhase(bool quick, bool soak) {
  std::printf("\n=== Phase 3: paced soak — gauges return to zero, census holds ===\n");
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());

  constexpr int kLanes = 4;
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  // A mild background fault rate on both soak keys: the quarantine path must
  // cycle continuously, not once.
  options.fault_plan.seed = 7;
  options.fault_plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 0.02));
  wasp::Runtime runtime(options);
  runtime.pool().Prewarm(runtime.MakeVmConfig(2ULL << 20), kLanes + 4);
  vnet::Vespid vespid(&runtime);
  VB_CHECK(vespid.Register("soak", vjs::Base64ScriptSource()).ok(), "register failed");

  wasp::VirtineSpec burst_spec;
  burst_spec.image = &image.value();
  burst_spec.key = "soak-burst";
  burst_spec.use_snapshot = true;
  burst_spec.mem_size = 2ULL << 20;
  burst_spec.word_bytes = 8;
  wasp::ArgPacker packer(burst_spec.word_bytes);
  packer.AddWord(12);
  burst_spec.args_page = packer.Finish();

  const int rounds = soak ? 6 : quick ? 2 : 3;
  const double round_s = soak ? 1.0 : quick ? 0.25 : 0.5;
  const std::vector<vnet::LoadPhase> phases = {{400, round_s}};
  const std::vector<uint8_t> payload(256, 5);

  int failures = 0;
  uint64_t total_faulted = 0;
  uint64_t census_after_first = 0;
  wasp::Executor executor(&runtime, wasp::ExecutorOptions{kLanes, 0, true});
  vbase::Table table({"round", "replayed", "faulted", "resident B", "census",
                      "quarantined now", "queued", "in flight"});
  for (int round = 0; round < rounds; ++round) {
    // Paced open-loop load: each arrival dispatched at its trace offset on
    // the real clock (the pace_wall_clock soak mode).
    vnet::ReplayOptions replay_options;
    replay_options.concurrency = kLanes;
    replay_options.seed = 42 + static_cast<uint64_t>(round);
    replay_options.pace_wall_clock = true;
    auto replay = vespid.ReplayBurstyLoad("soak", phases, payload, replay_options);
    VB_CHECK(replay.ok(), replay.status().ToString());
    total_faulted += replay->faulted_invocations;

    // Executor burst on a second key, sampling the accounting law mid-flight
    // — the invariant must hold at *every* observation, not just quiescence.
    constexpr int kBurst = 32;
    std::vector<std::future<wasp::RunOutcome>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      futures.push_back(executor.Submit(burst_spec));
      if (i % 8 == 0) {
        CheckExecutorConservation(executor.stats(), &failures);
      }
    }
    for (auto& f : futures) {
      const wasp::RunOutcome outcome = f.get();
      if (outcome.fault == wasp::FaultKind::kNone && !outcome.status.ok()) {
        std::printf("FAIL: round %d burst invocation failed: %s\n", round,
                    outcome.status.ToString().c_str());
        ++failures;
      }
    }

    // Quiesce and sample every gauge.
    runtime.pool().DrainCleaner();
    const wasp::PoolStats pool_stats = runtime.pool().stats();
    const wasp::ExecutorStats exec_stats = QuiescedExecutorStats(executor);
    const uint64_t resident = CheckedResident(runtime.pool(), &failures);
    CheckQuarantineLedger(pool_stats, &failures);
    CheckExecutorConservation(exec_stats, &failures);
    const uint64_t census =
        runtime.pool().TotalFreeShells() + runtime.pool().TotalAffineShells();
    table.AddRow({std::to_string(round), std::to_string(replay->sim.total_requests),
                  std::to_string(replay->faulted_invocations), std::to_string(resident),
                  std::to_string(census), std::to_string(pool_stats.quarantined_now),
                  std::to_string(exec_stats.queued), std::to_string(exec_stats.in_flight)});
    if (pool_stats.quarantined_now != 0 || exec_stats.queued != 0 ||
        exec_stats.in_flight != 0) {
      std::printf("FAIL: round %d gauges did not return to zero at quiescence\n", round);
      ++failures;
    }
    if (round == 0) {
      census_after_first = census;
    } else if (census > census_after_first + 2) {
      // Steady state: the same load re-runs on the same shells.  A transient
      // create while a shell sat in quarantine is tolerable; growth beyond
      // that is a leak.
      std::printf("FAIL: round %d shell census drifted %llu -> %llu\n", round,
                  static_cast<unsigned long long>(census_after_first),
                  static_cast<unsigned long long>(census));
      ++failures;
    }
  }
  table.Print();

  // Final leak check: retiring both keys must release every resident byte.
  runtime.RetireSnapshot("vespid-soak");
  runtime.RetireSnapshot("soak-burst");
  runtime.pool().DrainCleaner();
  const uint64_t final_resident = CheckedResident(runtime.pool(), &failures);
  if (final_resident != 0 || runtime.pool().TotalAffineShells() != 0) {
    std::printf("FAIL: retirement left %llu resident bytes / %zu affine shells\n",
                static_cast<unsigned long long>(final_resident),
                runtime.pool().TotalAffineShells());
    ++failures;
  }
  const wasp::PoolStats end_stats = runtime.pool().stats();
  CheckQuarantineLedger(end_stats, &failures);
  std::printf("\nClaim check: %d paced rounds, %llu background faults absorbed; "
              "quarantine/queue gauges zero after every round, shell census stable, "
              "and retirement drained residency to zero.\n",
              rounds, static_cast<unsigned long long>(total_faulted));
  if (total_faulted == 0) {
    std::printf("FAIL: the soak's background fault rate never fired\n");
    ++failures;
  }
  return failures;
}

// --- Phase 4: retry-once + circuit breaker goodput under the storm -----------

// One closed-loop run of the two-key mix: `jobs` submissions, victim twice
// as often as the co-tenant, window 2x lanes in flight so completions feed
// the breaker before later submissions arrive.
struct RecoveryRun {
  uint64_t offered = 0;
  uint64_t shed = 0;       // rejected at the door by the open breaker
  uint64_t executed = 0;   // admitted and ran (possibly retried, possibly died)
  uint64_t ok = 0;         // fault-free completions (the goodput numerator)
  uint64_t faulted = 0;
  uint64_t retries = 0;
  uint64_t retry_successes = 0;
  uint64_t breaker_opens = 0;
  uint64_t fresh_creates = 0;
  uint64_t total_cycles = 0;  // modeled cycles burned by admitted work
  double goodput_per_ms = 0;  // ok completions per modeled lane-millisecond
};

RecoveryRun RunRecoveryLoad(const visa::Image& image, bool breaker, int jobs,
                            int* failures) {
  constexpr int kLanes = 4;
  // Default kSync clean mode: a faulted shell is destroyed outright, so its
  // replacement pays vm_create — the storm inflates the victim's real
  // service cost, which is exactly what the breaker refuses to keep buying.
  wasp::RuntimeOptions options;
  options.fault_plan.seed = 1789;
  options.fault_plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kGuestTrap, 0.25, "victim"));
  options.fault_plan.rules.push_back(
      wasp::FaultPlan::Probability(wasp::FaultKind::kWorkerDeath, 0.10, "victim"));
  wasp::Runtime runtime(options);
  runtime.pool().Prewarm(runtime.MakeVmConfig(2ULL << 20), kLanes + 4);

  wasp::ExecutorOptions eopts;
  eopts.workers = kLanes;
  eopts.recovery.idempotent_keys = {"victim", "cotenant"};
  eopts.recovery.breaker_enabled = breaker;
  eopts.recovery.breaker_alpha = 0.2;
  // The storm's steady-state fault rate is ~0.33, so the 0.5 default would
  // never trip; 0.2 opens within the first EWMA window and re-opens on the
  // first faulted attempt after a clean probe closes it.
  eopts.recovery.breaker_open_threshold = 0.2;
  eopts.recovery.breaker_min_samples = 8;
  eopts.recovery.breaker_open_sheds = 24;
  wasp::Executor executor(&runtime, eopts);

  auto make_spec = [&image](const char* key, uint64_t arg) {
    wasp::VirtineSpec spec;
    spec.image = &image;
    spec.key = key;
    spec.use_snapshot = true;
    spec.mem_size = 2ULL << 20;
    spec.word_bytes = 8;
    wasp::ArgPacker packer(spec.word_bytes);
    packer.AddWord(arg);
    spec.args_page = packer.Finish();
    return spec;
  };

  RecoveryRun run;
  std::deque<std::future<wasp::RunOutcome>> window;
  auto consume = [&run, failures](std::future<wasp::RunOutcome>& future) {
    const wasp::RunOutcome outcome = future.get();
    ++run.executed;
    run.total_cycles += outcome.stats.total_cycles;
    if (outcome.fault == wasp::FaultKind::kNone) {
      if (!outcome.status.ok()) {
        std::printf("FAIL: fault-free invocation failed: %s\n",
                    outcome.status.ToString().c_str());
        ++*failures;
      }
      ++run.ok;
    } else {
      ++run.faulted;
    }
  };
  for (int i = 0; i < jobs; ++i) {
    // The victim's fib(16) costs ~7x the co-tenant's fib(12): the storm
    // wastes expensive work, the breaker saves it.
    const bool is_victim = i % 3 != 2;
    ++run.offered;
    std::future<wasp::RunOutcome> future;
    wasp::Admission admission = wasp::Admission::kAccepted;
    if (!executor.TrySubmit(make_spec(is_victim ? "victim" : "cotenant",
                                      is_victim ? 16 : 12),
                            &future, wasp::KeyClass::kLatency, &admission)) {
      if (admission != wasp::Admission::kCircuitOpen || !breaker || !is_victim) {
        std::printf("FAIL: unexpected rejection (admission %d, breaker %d, victim %d)\n",
                    static_cast<int>(admission), breaker, is_victim);
        ++*failures;
      }
      ++run.shed;
      continue;
    }
    window.push_back(std::move(future));
    if (window.size() >= 2 * kLanes) {
      consume(window.front());
      window.pop_front();
    }
    if (i % 16 == 0) {
      CheckExecutorConservation(executor.stats(), failures);
    }
  }
  while (!window.empty()) {
    consume(window.front());
    window.pop_front();
  }

  const wasp::ExecutorStats stats = QuiescedExecutorStats(executor);
  CheckExecutorConservation(stats, failures);
  // The retried-job invariant: every admitted job resolves exactly once,
  // retries never mint or lose a submission.
  if (stats.submitted != run.executed || stats.completed + stats.faulted != run.executed ||
      stats.completed != run.ok || stats.breaker_rejected != run.shed) {
    std::printf("FAIL: recovery accounting mismatch (submitted %llu executed %llu "
                "completed %llu ok %llu rejected %llu shed %llu)\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(run.executed),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(run.ok),
                static_cast<unsigned long long>(stats.breaker_rejected),
                static_cast<unsigned long long>(run.shed));
    ++*failures;
  }
  run.retries = stats.retries;
  run.retry_successes = stats.retry_successes;
  run.breaker_opens = stats.breaker_opens;
  run.fresh_creates = runtime.pool().stats().fresh_creates;
  const double lane_ms = vbase::CyclesToMicros(run.total_cycles) / 1e3 / kLanes;
  run.goodput_per_ms = lane_ms > 0 ? static_cast<double>(run.ok) / lane_ms : 0;
  return run;
}

int RunRecoveryPhase(bool quick, const vnet::MeasuredTrace& control_trace,
                     const vnet::MeasuredTrace& storm_trace) {
  std::printf("\n=== Phase 4: retry-once + circuit breaker goodput under the storm ===\n");
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());
  int failures = 0;

  const int jobs = quick ? 300 : 900;
  const RecoveryRun without = RunRecoveryLoad(*image, /*breaker=*/false, jobs, &failures);
  const RecoveryRun with = RunRecoveryLoad(*image, /*breaker=*/true, jobs, &failures);

  vbase::Table table({"run", "offered", "shed", "executed", "ok", "faulted", "retries",
                      "creates", "Mcycles", "goodput ok/lane-ms"});
  for (const auto& [label, run] :
       {std::pair<const char*, const RecoveryRun*>{"breaker off", &without},
        std::pair<const char*, const RecoveryRun*>{"breaker on", &with}}) {
    table.AddRow({label, std::to_string(run->offered), std::to_string(run->shed),
                  std::to_string(run->executed), std::to_string(run->ok),
                  std::to_string(run->faulted), std::to_string(run->retries),
                  std::to_string(run->fresh_creates),
                  vbase::Fmt(run->total_cycles / 1e6, 1),
                  vbase::Fmt(run->goodput_per_ms, 2)});
  }
  table.Print();

  if (without.shed != 0 || without.breaker_opens != 0) {
    std::printf("FAIL: the breaker-off run must never shed\n");
    ++failures;
  }
  if (with.shed == 0 || with.breaker_opens == 0) {
    std::printf("FAIL: the breaker never tripped under a 33%% storm\n");
    ++failures;
  }
  // The shielded run may legitimately see zero retries: the breaker admits
  // so few victim jobs that no worker death needs recovering.
  if (without.retries == 0 || without.retry_successes == 0) {
    std::printf("FAIL: worker deaths on an idempotent key must drive retries\n");
    ++failures;
  }
  const double ratio = without.goodput_per_ms > 0
                           ? with.goodput_per_ms / without.goodput_per_ms
                           : 0;
  std::printf("\nClaim check: goodput %.2f -> %.2f ok/lane-ms with the breaker "
              "(%.2fx; gate >= 1.5x); %llu of %llu victim submissions shed, "
              "%llu retries (%llu recovered) in the unshielded run.\n",
              without.goodput_per_ms, with.goodput_per_ms, ratio,
              static_cast<unsigned long long>(with.shed),
              static_cast<unsigned long long>(with.offered * 2 / 3),
              static_cast<unsigned long long>(without.retries),
              static_cast<unsigned long long>(without.retry_successes));
  if (ratio < 1.5) {
    std::printf("FAIL: the breaker's goodput win is below the 1.5x gate\n");
    ++failures;
  }

  // The phase-2 measured traces replayed under the breaker discipline: only
  // the stormed victim sheds, and the co-tenant's p99 holds the 2x gate.
  vnet::GovernanceOptions governed;
  governed.lanes = 2;
  governed.batch_weight = 0;
  governed.recovery.breaker_enabled = true;
  governed.recovery.breaker_open_threshold = 0.2;
  governed.recovery.breaker_min_samples = 4;
  governed.recovery.breaker_open_sheds = 8;
  const vnet::GovernedReplay control = vnet::GovernTrace(control_trace, governed);
  const vnet::GovernedReplay storm = vnet::GovernTrace(storm_trace, governed);
  const vnet::TenantOutcome& victim = storm.tenants[0];
  const vnet::TenantOutcome& bystander = storm.tenants[1];
  if (victim.shed_breaker == 0 || victim.breaker_opens == 0) {
    std::printf("FAIL: the replayed breaker never shed the stormed victim\n");
    ++failures;
  }
  if (bystander.shed_breaker != 0 || control.tenants[0].shed_breaker != 0 ||
      control.tenants[1].shed_breaker != 0) {
    std::printf("FAIL: the breaker shed a fault-free tenant\n");
    ++failures;
  }
  const double floor_us = 500.0;
  const double base_p99 = std::max(control.tenants[1].p99_queue_wait_us, floor_us);
  std::printf("Claim check: breaker replay shed %llu victim arrivals over %llu opens; "
              "co-tenant p99 %.0f us vs %.0f us control (%.2fx; gate <= 2x with a "
              "%.0f us floor).\n",
              static_cast<unsigned long long>(victim.shed_breaker),
              static_cast<unsigned long long>(victim.breaker_opens),
              bystander.p99_queue_wait_us, control.tenants[1].p99_queue_wait_us,
              bystander.p99_queue_wait_us / base_p99, floor_us);
  if (bystander.p99_queue_wait_us > 2.0 * base_p99) {
    std::printf("FAIL: the breaker replay degraded the co-tenant's p99 beyond 2x\n");
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    }
  }
  benchutil::Header(
      "Figure 17: fault injection, shell quarantine, one-invocation blast radius",
      "an injected guest fault costs exactly its invocation: the shell is "
      "quarantined until scrubbed, the key's quota slot is released, co-tenant p99 "
      "stays within 2x of fault-free, and every accounting ledger conserves");

  int failures = RunContainmentPhase();
  vnet::MeasuredTrace control_trace;
  vnet::MeasuredTrace storm_trace;
  failures += RunStormPhase(quick, &control_trace, &storm_trace);
  failures += RunSoakPhase(quick, soak);
  failures += RunRecoveryPhase(quick, control_trace, storm_trace);
  if (failures > 0) {
    std::printf("\nFAIL: %d chaos gate(s) violated\n", failures);
    return 1;
  }
  std::printf("\nOK: faults classify, quarantine contains, co-tenants keep their "
              "latency, retry and the breaker recover goodput, and nothing leaks "
              "under soak.\n");
  return 0;
}
