// Figure 15: serverless virtine performance vs a container-based platform
// under the paper's bursty Locust pattern (ramp up, two bursts, ramp down).
//
// The Vespid (virtine) half is *replayed, not modeled*: every arrival of
// the trace becomes a real invocation of the microjs base64 function
// through the wasp::Executor (snapshot restores, pool reuse, and the cold
// first touch under real contention), and the measured per-request service
// costs are laid onto the trace's virtual timeline.  The container half
// remains the explicit analytic model calibrated to published
// OpenWhisk-style cold/warm starts (DESIGN.md S2) — the comparison
// baseline.  Both halves share the same arrival trace (same generator,
// same seed), so the timelines compare bucket for bucket.
#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/vjs/vjs.h"
#include "src/vnet/serverless.h"
#include "src/wasp/runtime.h"

namespace {

void PrintTimeline(const vnet::SimResult& sim) {
  vbase::Table table({"t (s)", "offered rps", "completed rps", "mean lat us", "p99 lat us",
                      "cold starts"});
  for (const auto& point : sim.timeline) {
    table.AddRow({vbase::Fmt(point.t_s, 0), vbase::Fmt(point.offered_rps, 0),
                  vbase::Fmt(point.completed_rps, 0), vbase::Fmt(point.mean_latency_us, 0),
                  vbase::Fmt(point.p99_latency_us, 0), std::to_string(point.cold_starts)});
  }
  table.Print();
  std::printf("overall: %llu requests, mean %.0f us, p99 %.0f us, %llu cold starts\n",
              static_cast<unsigned long long>(sim.total_requests), sim.latency_us.mean,
              sim.latency_us.p99,
              static_cast<unsigned long long>(sim.total_cold_starts));
}

}  // namespace

int main() {
  benchutil::Header(
      "Figure 15: serverless platform under bursty load (virtines vs containers)",
      "the virtine platform sustains bursts with low latency; the container platform "
      "suffers cold-start spikes when bursts exceed the warm pool");

  wasp::Runtime runtime;
  vnet::Vespid vespid(&runtime);
  VB_CHECK(vespid.Register("b64", vjs::Base64ScriptSource()).ok(), "register failed");
  vbase::Rng rng(11);
  std::vector<uint8_t> payload(512);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }

  // Ramp up, burst, dip, burst, ramp down (the paper's Locust profile).
  const std::vector<vnet::LoadPhase> pattern = {
      {5, 2}, {20, 2}, {120, 3}, {15, 2}, {120, 3}, {20, 2}, {5, 2},
  };
  constexpr uint64_t kSeed = 42;
  constexpr int kLanes = 8;

  // --- Vespid: real executor-driven replay of the trace ---------------------
  vnet::ReplayOptions replay_options;
  replay_options.concurrency = kLanes;
  replay_options.seed = kSeed;
  auto replay = vespid.ReplayBurstyLoad("b64", pattern, payload, replay_options);
  VB_CHECK(replay.ok(), replay.status().ToString());
  std::printf("\n--- Vespid (virtines), replayed: %d executor lanes, measured warm %.0f us, "
              "cold %.0f us x%llu ---\n",
              kLanes, replay->measured_warm_us, replay->measured_cold_us,
              static_cast<unsigned long long>(replay->cold_invocations));
  PrintTimeline(replay->sim);

  // --- Containers: the calibrated analytic baseline -------------------------
  // ~500 ms cold start (docker create + Node/V8 init; optimized literature
  // systems reach <20 ms, vanilla OpenWhisk does not), ~30 ms per warm
  // invocation (container round trip), and a warm pool that shrinks after a
  // few idle seconds — so each burst forces scale-out.
  vnet::ExecutorModel container_model{"OpenWhisk-style containers", 30000.0, 500000.0, 16,
                                      3.0};
  const vnet::SimResult container = vnet::SimulateBurstyLoad(pattern, container_model, kSeed);
  std::printf("\n--- %s (modeled: warm %.0f us, cold +%.0f us, %d instances) ---\n",
              container_model.name.c_str(), container_model.warm_service_us,
              container_model.cold_extra_us, container_model.max_instances);
  PrintTimeline(container);

  std::printf("\nVespid rows come from %llu real virtine invocations dispatched through the\n"
              "wasp::Executor over the arrival trace (replay wall time %.2f s); the container\n"
              "rows are the calibrated model documented in DESIGN.md S2.  Both halves share\n"
              "the trace (seed %llu), so buckets compare one to one.\n",
              static_cast<unsigned long long>(replay->sim.total_requests),
              static_cast<double>(replay->wall_ns) / 1e9,
              static_cast<unsigned long long>(kSeed));
  return 0;
}
