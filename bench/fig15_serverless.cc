// Figure 15: serverless virtine performance vs a container-based platform
// under the paper's bursty Locust pattern (ramp up, two bursts, ramp down).
//
// The Vespid (virtine) executor's warm/cold service times are measured from
// real invocations of the microjs base64 function on this machine; the
// container executor is an explicit model calibrated to published
// OpenWhisk-style cold/warm starts (DESIGN.md S2).  The bursty pattern is
// then evaluated deterministically in virtual time.
#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/vjs/vjs.h"
#include "src/vnet/serverless.h"
#include "src/wasp/runtime.h"

int main() {
  benchutil::Header(
      "Figure 15: serverless platform under bursty load (virtines vs containers)",
      "the virtine platform sustains bursts with low latency; the container platform "
      "suffers cold-start spikes when bursts exceed the warm pool");

  // --- Measure Vespid's real per-invocation costs ---------------------------
  wasp::Runtime runtime;
  vnet::Vespid vespid(&runtime);
  VB_CHECK(vespid.Register("b64", vjs::Base64ScriptSource()).ok(), "register failed");
  vbase::Rng rng(11);
  std::vector<uint8_t> payload(512);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }
  double cold_us = 0;
  for (int i = 0; i < 2; ++i) {
    auto inv = vespid.Invoke("b64", payload);
    VB_CHECK(inv.ok(), inv.status().ToString());
    if (inv->cold) {
      cold_us = vbase::CyclesToMicros(inv->modeled_cycles);
    }
  }
  // Warm service cost measured the way the platform actually serves bursts:
  // a concurrent batch through the wasp::Executor (snapshot restores and
  // pool reuse under real contention), not one invocation at a time.
  constexpr int kBatch = 24;
  constexpr int kConcurrency = 8;
  auto batch = vespid.InvokeBatch("b64", std::vector<std::vector<uint8_t>>(kBatch, payload),
                                  kConcurrency);
  VB_CHECK(batch.ok(), batch.status().ToString());
  std::vector<double> warm_us;
  for (const auto& inv : batch->invocations) {
    if (!inv.cold) {
      warm_us.push_back(vbase::CyclesToMicros(inv.modeled_cycles));
    }
  }
  VB_CHECK(!warm_us.empty(), "no warm invocation in the batch");
  const double vespid_warm = vbase::Summarize(warm_us).mean;

  // Cold extra: guard against a never-observed cold invocation (a pre-seeded
  // snapshot makes every run warm => cold_us stays 0 and the naive
  // subtraction would feed the model a *negative* cold-start cost).
  double cold_extra_us = cold_us - vespid_warm;
  if (cold_us <= 0.0) {
    std::printf("warning: no cold invocation observed (snapshot pre-seeded); "
                "modeling cold extra as 0\n");
    cold_extra_us = 0.0;
  } else if (cold_extra_us < 0.0) {
    std::printf("warning: cold invocation (%.0f us) ran cheaper than warm mean (%.0f us); "
                "clamping cold extra to 0\n", cold_us, vespid_warm);
    cold_extra_us = 0.0;
  }

  // --- Executor models -------------------------------------------------------
  vnet::ExecutorModel virtine_model{"Vespid (virtines)", vespid_warm, cold_extra_us, 64,
                                    600.0};
  // Container platform: ~500 ms cold start (docker create + Node/V8 init;
  // optimized literature systems reach <20 ms, vanilla OpenWhisk does not),
  // ~30 ms per warm invocation (container round trip), and a warm pool that
  // shrinks after a few idle seconds — so each burst forces scale-out.
  vnet::ExecutorModel container_model{"OpenWhisk-style containers", 30000.0, 500000.0, 16,
                                      3.0};

  // Ramp up, burst, dip, burst, ramp down (the paper's Locust profile).
  const std::vector<vnet::LoadPhase> pattern = {
      {5, 2}, {20, 2}, {120, 3}, {15, 2}, {120, 3}, {20, 2}, {5, 2},
  };

  for (const auto& model : {virtine_model, container_model}) {
    const vnet::SimResult sim = vnet::SimulateBurstyLoad(pattern, model);
    std::printf("\n--- %s (warm %.0f us, cold +%.0f us, %d instances) ---\n",
                model.name.c_str(), model.warm_service_us, model.cold_extra_us,
                model.max_instances);
    vbase::Table table({"t (s)", "offered rps", "completed rps", "mean lat us", "p99 lat us",
                        "cold starts"});
    for (const auto& point : sim.timeline) {
      table.AddRow({vbase::Fmt(point.t_s, 0), vbase::Fmt(point.offered_rps, 0),
                    vbase::Fmt(point.completed_rps, 0), vbase::Fmt(point.mean_latency_us, 0),
                    vbase::Fmt(point.p99_latency_us, 0), std::to_string(point.cold_starts)});
    }
    table.Print();
    std::printf("overall: %llu requests, mean %.0f us, p99 %.0f us, %llu cold starts\n",
                static_cast<unsigned long long>(sim.total_requests), sim.latency_us.mean,
                sim.latency_us.p99,
                static_cast<unsigned long long>(sim.total_cold_starts));
  }
  std::printf("\nVespid service times measured from real invocations on this machine (%d-wide\n"
              "concurrent batch through wasp::Executor, modeled makespan %.0f us for %d\n"
              "invocations); the container row is the calibrated model documented in\n"
              "DESIGN.md S2.\n",
              kConcurrency, vbase::CyclesToMicros(batch->makespan_cycles), kBatch);
  return 0;
}
