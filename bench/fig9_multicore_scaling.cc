// Figure 9 (this reproduction's addition): multicore invocation scaling.
//
// The paper measures single-lane provisioning latency (Figure 8); serving a
// serverless burst (Figure 15) is a *throughput* problem.  This benchmark
// sweeps invocation throughput across 1/2/4/8/16 executor worker threads for
// three configurations:
//
//   * pooled-sync      — Wasp+C   (shells cleaned inline on release)
//   * pooled-async     — Wasp+CA  (cleaner crew off the critical path)
//   * snapshot-restore — Wasp+CA plus the snapshot fast path
//
// Throughput is reported in the repo's deterministic currency: modeled
// cycles at the 2.69 GHz reference clock.  A batch's modeled completion
// time is its busiest worker lane (max over per-lane busy cycles), so the
// metric is machine-independent while the *execution* is genuinely
// concurrent — every run exercises the sharded pool, the cleaner crew, and
// the shared snapshot store under real thread contention.
//
// PR 7 extends the sweep to 16 lanes and reports the acquire path itself:
// per-point acquire p50/p99 (wall ns, from each invocation's measured
// acquire_ns) and the fraction of acquires served lock-free (lane cache +
// Treiber free-list, from PoolStats deltas).  The gates are the lock-free
// redesign's own claims: >= 95% of steady-state acquires lock-free, and
// acquire p99 flat (<= 2x the 1-lane value, with an absolute floor so
// scheduler noise on small hosts cannot fail an otherwise-flat curve).
//
//   ./fig9_multicore_scaling                 # full sweep
//   ./fig9_multicore_scaling --quick         # CI smoke (fewer invocations)
//   ./fig9_multicore_scaling --json out.json # also write machine-readable results
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/stats.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kThreadSweep[] = {1, 2, 4, 8, 16};
constexpr int kFibArg = 12;
// Flat-p99 gate: p99 at 16 lanes must stay under max(2 x p99 at 1 lane,
// this floor).  The floor absorbs scheduler preemption spikes on hosts with
// fewer cores than lanes (CI runs this on 1 core); it is still an order of
// magnitude below what a contended shard mutex would produce.
constexpr double kAcquireP99FloorNs = 50'000.0;

int64_t HostFib(int n) { return n < 2 ? n : HostFib(n - 1) + HostFib(n - 2); }

struct SweepPoint {
  int threads = 0;
  uint64_t makespan_cycles = 0;
  double throughput_kinv_s = 0;  // invocations per modeled second / 1000
  double speedup = 1.0;          // vs the 1-thread point of the same config
  uint64_t wall_ns = 0;
  double acquire_p50_ns = 0;     // per-invocation shell-acquire wall latency
  double acquire_p99_ns = 0;
  double lockfree_hit_rate = 0;  // (lane-cache + free-list) / acquires, this point
  uint64_t slow_path_acquires = 0;  // acquires that took a shard mutex, this point
};

struct ConfigResult {
  std::string name;
  std::vector<SweepPoint> points;
};

ConfigResult RunConfig(const std::string& name, wasp::CleanMode mode, bool use_snapshot,
                       const visa::Image& image, int invocations) {
  wasp::RuntimeOptions options;
  options.clean_mode = mode;
  wasp::Runtime runtime(options);

  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 8;
  if (use_snapshot) {
    spec.use_snapshot = true;
    spec.key = "fig9-" + name;
  }
  wasp::ArgPacker packer(spec.word_bytes);
  packer.AddWord(static_cast<uint64_t>(kFibArg));
  spec.args_page = packer.Finish();

  // Warm state once so the sweep measures the steady-state serving path.
  // One shell per invocation makes a pool miss impossible even if the
  // cleaner crew is starved by a loaded host for a whole batch — a single
  // miss would charge vm_create (~4 invocations' worth of modeled cycles)
  // to one lane and turn the deterministic makespan into a flaky gate.
  // For the snapshot config, a single sequential run seeds the snapshot.
  runtime.pool().Prewarm(runtime.MakeVmConfig(spec.mem_size), invocations);
  if (use_snapshot) {
    auto seed = runtime.Invoke(spec);
    VB_CHECK(seed.status.ok(), seed.status.ToString());
    VB_CHECK(seed.stats.took_snapshot, "snapshot seeding failed");
  }
  runtime.pool().DrainCleaner();

  ConfigResult result;
  result.name = name;
  const std::vector<wasp::VirtineSpec> specs(static_cast<size_t>(invocations), spec);
  const int64_t expected = HostFib(kFibArg);
  for (const int threads : kThreadSweep) {
    const wasp::PoolStats before = runtime.pool().stats();
    wasp::Executor::BatchStats stats;
    std::vector<wasp::RunOutcome> outcomes =
        wasp::Executor::Run(&runtime, specs, threads, &stats);
    const wasp::PoolStats after = runtime.pool().stats();
    std::vector<double> acquire_ns;
    acquire_ns.reserve(outcomes.size());
    for (const wasp::RunOutcome& outcome : outcomes) {
      VB_CHECK(outcome.status.ok(), outcome.status.ToString());
      VB_CHECK(static_cast<int64_t>(outcome.result_word) == expected,
               "wrong fib result under concurrency");
      acquire_ns.push_back(static_cast<double>(outcome.stats.acquire_ns));
    }
    // Restock every free list before the next lane count so each point
    // starts from the same warm pool.
    runtime.pool().DrainCleaner();
    VB_CHECK(runtime.pool().stats().fresh_creates == 0,
             "pool miss during the sweep: makespan would include vm_create");

    SweepPoint point;
    point.threads = threads;
    point.makespan_cycles = stats.MakespanCycles();
    const double makespan_s = vbase::CyclesToMicros(point.makespan_cycles) / 1e6;
    point.throughput_kinv_s = static_cast<double>(invocations) / makespan_s / 1e3;
    point.wall_ns = stats.wall_ns;
    point.speedup = result.points.empty()
                        ? 1.0
                        : point.throughput_kinv_s / result.points[0].throughput_kinv_s;
    point.acquire_p50_ns = vbase::Quantile(acquire_ns, 0.50);
    point.acquire_p99_ns = vbase::Quantile(acquire_ns, 0.99);
    // Acquire-path tier accounting for *this* sweep point, from the pool's
    // monotone counters.  Every acquire lands in exactly one tier, so the
    // lock-free fraction is (lane-cache + free-list) / acquires.
    const uint64_t point_acquires = after.acquires - before.acquires;
    const uint64_t point_lockfree = (after.lane_cache_hits - before.lane_cache_hits) +
                                    (after.freelist_hits - before.freelist_hits);
    point.slow_path_acquires = after.slow_path_acquires - before.slow_path_acquires;
    point.lockfree_hit_rate = point_acquires == 0
                                  ? 1.0
                                  : static_cast<double>(point_lockfree) /
                                        static_cast<double>(point_acquires);
    result.points.push_back(point);
  }
  return result;
}

void WriteJson(const std::string& path, const std::vector<ConfigResult>& configs,
               int invocations) {
  FILE* f = std::fopen(path.c_str(), "w");
  VB_CHECK(f != nullptr, "cannot open " << path);
  std::fprintf(f, "{\n  \"invocations_per_point\": %d,\n  \"configs\": {\n", invocations);
  for (size_t c = 0; c < configs.size(); ++c) {
    std::fprintf(f, "    \"%s\": [\n", configs[c].name.c_str());
    for (size_t p = 0; p < configs[c].points.size(); ++p) {
      const SweepPoint& pt = configs[c].points[p];
      std::fprintf(f,
                   "      {\"threads\": %d, \"makespan_cycles\": %llu, "
                   "\"throughput_kinv_per_modeled_s\": %.2f, \"speedup_vs_1\": %.2f, "
                   "\"wall_ns\": %llu, \"acquire_p50_ns\": %.0f, \"acquire_p99_ns\": %.0f, "
                   "\"lockfree_hit_rate\": %.4f, \"slow_path_acquires\": %llu}%s\n",
                   pt.threads, static_cast<unsigned long long>(pt.makespan_cycles),
                   pt.throughput_kinv_s, pt.speedup,
                   static_cast<unsigned long long>(pt.wall_ns), pt.acquire_p50_ns,
                   pt.acquire_p99_ns, pt.lockfree_hit_rate,
                   static_cast<unsigned long long>(pt.slow_path_acquires),
                   p + 1 < configs[c].points.size() ? "," : "");
    }
    std::fprintf(f, "    ]%s\n", c + 1 < configs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const int invocations = quick ? 16 : 96;

  benchutil::Header(
      "Figure 9 (reproduction extra): invocation throughput vs executor worker threads",
      "the sharded pool + cleaner crew + executor keep invocation lanes independent: "
      "8-lane pooled-async throughput reaches >= 4x the single lane");

  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());

  std::vector<ConfigResult> configs;
  configs.push_back(RunConfig("pooled-sync", wasp::CleanMode::kSync, false, *image,
                              invocations));
  configs.push_back(RunConfig("pooled-async", wasp::CleanMode::kAsync, false, *image,
                              invocations));
  configs.push_back(RunConfig("snapshot-restore", wasp::CleanMode::kAsync, true, *image,
                              invocations));

  vbase::Table table({"config", "threads", "makespan kcycles", "kinv / modeled s",
                      "speedup vs 1", "acq p50 ns", "acq p99 ns", "lock-free %",
                      "wall ms"});
  for (const ConfigResult& config : configs) {
    for (const SweepPoint& point : config.points) {
      table.AddRow({config.name, std::to_string(point.threads),
                    vbase::Fmt(static_cast<double>(point.makespan_cycles) / 1e3, 1),
                    vbase::Fmt(point.throughput_kinv_s, 1), vbase::Fmt(point.speedup, 2),
                    vbase::Fmt(point.acquire_p50_ns, 0), vbase::Fmt(point.acquire_p99_ns, 0),
                    vbase::Fmt(point.lockfree_hit_rate * 100.0, 1),
                    vbase::Fmt(static_cast<double>(point.wall_ns) / 1e6, 2)});
    }
  }
  table.Print();

  // Gates.  Throughput: the PR 4 claim (8-lane pooled-async >= 4x one
  // lane).  Acquire path: the PR 7 claims, checked on the pooled-async
  // config — >= 95% of steady-state acquires lock-free at *every* lane
  // count, and p99 flat from 1 to 16 lanes.
  const ConfigResult& async_cfg = configs[1];
  const SweepPoint& eight = async_cfg.points[3];
  const SweepPoint& one = async_cfg.points.front();
  const SweepPoint& sixteen = async_cfg.points.back();
  double min_hit_rate = 1.0;
  for (const SweepPoint& point : async_cfg.points) {
    min_hit_rate = std::min(min_hit_rate, point.lockfree_hit_rate);
  }
  const double p99_bound = std::max(2.0 * one.acquire_p99_ns, kAcquireP99FloorNs);
  const bool speedup_ok = eight.speedup >= 4.0;
  const bool lockfree_ok = min_hit_rate >= 0.95;
  const bool p99_ok = sixteen.acquire_p99_ns <= p99_bound;
  std::printf("\n%d invocations per point; modeled makespan = busiest worker lane.\n",
              invocations);
  std::printf("Claim check: pooled-async at 8 threads >= 4x the 1-thread baseline -> "
              "measured %.2fx (%s)\n",
              eight.speedup, speedup_ok ? "PASS" : "FAIL");
  std::printf("Claim check: >= 95%% of acquires lock-free at every lane count -> "
              "min %.1f%% (%s)\n",
              min_hit_rate * 100.0, lockfree_ok ? "PASS" : "FAIL");
  std::printf("Claim check: acquire p99 flat 1 -> 16 lanes (<= max(2 x %.0f ns, %.0f ns)) "
              "-> %.0f ns (%s)\n",
              one.acquire_p99_ns, kAcquireP99FloorNs, sixteen.acquire_p99_ns,
              p99_ok ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    WriteJson(json_path, configs, invocations);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return speedup_ok && lockfree_ok && p99_ok ? 0 : 1;
}
