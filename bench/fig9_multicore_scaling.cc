// Figure 9 (this reproduction's addition): multicore invocation scaling.
//
// The paper measures single-lane provisioning latency (Figure 8); serving a
// serverless burst (Figure 15) is a *throughput* problem.  This benchmark
// sweeps invocation throughput across 1/2/4/8 executor worker threads for
// three configurations:
//
//   * pooled-sync      — Wasp+C   (shells cleaned inline on release)
//   * pooled-async     — Wasp+CA  (cleaner crew off the critical path)
//   * snapshot-restore — Wasp+CA plus the snapshot fast path
//
// Throughput is reported in the repo's deterministic currency: modeled
// cycles at the 2.69 GHz reference clock.  A batch's modeled completion
// time is its busiest worker lane (max over per-lane busy cycles), so the
// metric is machine-independent while the *execution* is genuinely
// concurrent — every run exercises the sharded pool, the cleaner crew, and
// the shared snapshot store under real thread contention.
//
//   ./fig9_multicore_scaling                 # full sweep
//   ./fig9_multicore_scaling --quick         # CI smoke (fewer invocations)
//   ./fig9_multicore_scaling --json out.json # also write machine-readable results
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kThreadSweep[] = {1, 2, 4, 8};
constexpr int kFibArg = 12;

int64_t HostFib(int n) { return n < 2 ? n : HostFib(n - 1) + HostFib(n - 2); }

struct SweepPoint {
  int threads = 0;
  uint64_t makespan_cycles = 0;
  double throughput_kinv_s = 0;  // invocations per modeled second / 1000
  double speedup = 1.0;          // vs the 1-thread point of the same config
  uint64_t wall_ns = 0;
};

struct ConfigResult {
  std::string name;
  std::vector<SweepPoint> points;
};

ConfigResult RunConfig(const std::string& name, wasp::CleanMode mode, bool use_snapshot,
                       const visa::Image& image, int invocations) {
  wasp::RuntimeOptions options;
  options.clean_mode = mode;
  wasp::Runtime runtime(options);

  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 8;
  if (use_snapshot) {
    spec.use_snapshot = true;
    spec.key = "fig9-" + name;
  }
  wasp::ArgPacker packer(spec.word_bytes);
  packer.AddWord(static_cast<uint64_t>(kFibArg));
  spec.args_page = packer.Finish();

  // Warm state once so the sweep measures the steady-state serving path.
  // One shell per invocation makes a pool miss impossible even if the
  // cleaner crew is starved by a loaded host for a whole batch — a single
  // miss would charge vm_create (~4 invocations' worth of modeled cycles)
  // to one lane and turn the deterministic makespan into a flaky gate.
  // For the snapshot config, a single sequential run seeds the snapshot.
  runtime.pool().Prewarm(runtime.MakeVmConfig(spec.mem_size), invocations);
  if (use_snapshot) {
    auto seed = runtime.Invoke(spec);
    VB_CHECK(seed.status.ok(), seed.status.ToString());
    VB_CHECK(seed.stats.took_snapshot, "snapshot seeding failed");
  }
  runtime.pool().DrainCleaner();

  ConfigResult result;
  result.name = name;
  const std::vector<wasp::VirtineSpec> specs(static_cast<size_t>(invocations), spec);
  const int64_t expected = HostFib(kFibArg);
  for (const int threads : kThreadSweep) {
    wasp::Executor::BatchStats stats;
    std::vector<wasp::RunOutcome> outcomes =
        wasp::Executor::Run(&runtime, specs, threads, &stats);
    for (const wasp::RunOutcome& outcome : outcomes) {
      VB_CHECK(outcome.status.ok(), outcome.status.ToString());
      VB_CHECK(static_cast<int64_t>(outcome.result_word) == expected,
               "wrong fib result under concurrency");
    }
    // Restock every free list before the next lane count so each point
    // starts from the same warm pool.
    runtime.pool().DrainCleaner();
    VB_CHECK(runtime.pool().stats().fresh_creates == 0,
             "pool miss during the sweep: makespan would include vm_create");

    SweepPoint point;
    point.threads = threads;
    point.makespan_cycles = stats.MakespanCycles();
    const double makespan_s = vbase::CyclesToMicros(point.makespan_cycles) / 1e6;
    point.throughput_kinv_s = static_cast<double>(invocations) / makespan_s / 1e3;
    point.wall_ns = stats.wall_ns;
    point.speedup = result.points.empty()
                        ? 1.0
                        : point.throughput_kinv_s / result.points[0].throughput_kinv_s;
    result.points.push_back(point);
  }
  return result;
}

void WriteJson(const std::string& path, const std::vector<ConfigResult>& configs,
               int invocations) {
  FILE* f = std::fopen(path.c_str(), "w");
  VB_CHECK(f != nullptr, "cannot open " << path);
  std::fprintf(f, "{\n  \"invocations_per_point\": %d,\n  \"configs\": {\n", invocations);
  for (size_t c = 0; c < configs.size(); ++c) {
    std::fprintf(f, "    \"%s\": [\n", configs[c].name.c_str());
    for (size_t p = 0; p < configs[c].points.size(); ++p) {
      const SweepPoint& pt = configs[c].points[p];
      std::fprintf(f,
                   "      {\"threads\": %d, \"makespan_cycles\": %llu, "
                   "\"throughput_kinv_per_modeled_s\": %.2f, \"speedup_vs_1\": %.2f, "
                   "\"wall_ns\": %llu}%s\n",
                   pt.threads, static_cast<unsigned long long>(pt.makespan_cycles),
                   pt.throughput_kinv_s, pt.speedup,
                   static_cast<unsigned long long>(pt.wall_ns),
                   p + 1 < configs[c].points.size() ? "," : "");
    }
    std::fprintf(f, "    ]%s\n", c + 1 < configs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const int invocations = quick ? 16 : 96;

  benchutil::Header(
      "Figure 9 (reproduction extra): invocation throughput vs executor worker threads",
      "the sharded pool + cleaner crew + executor keep invocation lanes independent: "
      "8-lane pooled-async throughput reaches >= 4x the single lane");

  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());

  std::vector<ConfigResult> configs;
  configs.push_back(RunConfig("pooled-sync", wasp::CleanMode::kSync, false, *image,
                              invocations));
  configs.push_back(RunConfig("pooled-async", wasp::CleanMode::kAsync, false, *image,
                              invocations));
  configs.push_back(RunConfig("snapshot-restore", wasp::CleanMode::kAsync, true, *image,
                              invocations));

  vbase::Table table({"config", "threads", "makespan kcycles", "kinv / modeled s",
                      "speedup vs 1", "wall ms"});
  for (const ConfigResult& config : configs) {
    for (const SweepPoint& point : config.points) {
      table.AddRow({config.name, std::to_string(point.threads),
                    vbase::Fmt(static_cast<double>(point.makespan_cycles) / 1e3, 1),
                    vbase::Fmt(point.throughput_kinv_s, 1), vbase::Fmt(point.speedup, 2),
                    vbase::Fmt(static_cast<double>(point.wall_ns) / 1e6, 2)});
    }
  }
  table.Print();

  const ConfigResult& async_cfg = configs[1];
  const SweepPoint& eight = async_cfg.points.back();
  std::printf("\n%d invocations per point; modeled makespan = busiest worker lane.\n",
              invocations);
  std::printf("Claim check: pooled-async at 8 threads >= 4x the 1-thread baseline -> "
              "measured %.2fx (%s)\n",
              eight.speedup, eight.speedup >= 4.0 ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    WriteJson(json_path, configs, invocations);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return eight.speedup >= 4.0 ? 0 : 1;
}
