// Figure 14: slowdown of JavaScript (microjs) virtines relative to native.
//
// Variants: plain virtine, virtine+snapshot, virtine-NT (no teardown), and
// virtine+snapshot+NT.  The native baseline is the engine's own in-guest
// measurement (rdtsc around init + run + teardown): the same managed
// runtime with zero virtualization overhead.  Only three hypercalls are
// permitted (snapshot, get_data, return_data).
#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/vcc/vcc.h"
#include "src/vjs/vjs.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"

namespace {

visa::Image BuildEngine(bool teardown) {
  auto bytecode = vjs::CompileScript(vjs::Base64ScriptSource());
  VB_CHECK(bytecode.ok(), bytecode.status().ToString());
  auto image = vcc::CompileProgram(
      vrt::VlibcSource() + vjs::EngineSource(*bytecode, teardown), "main",
      vrt::Env::kLong64);
  VB_CHECK(image.ok(), image.status().ToString());
  return std::move(*image);
}

}  // namespace

int main() {
  benchutil::Header(
      "Figure 14: microjs (Duktape-analogue) virtines, slowdown vs native",
      "plain virtine adds ~125us over the 419us native baseline; snapshotting halves "
      "overhead; snapshot+no-teardown leaves essentially only parse+execute");

  const visa::Image with_teardown = BuildEngine(/*teardown=*/true);
  const visa::Image no_teardown = BuildEngine(/*teardown=*/false);

  // 512-byte payload, as a Duktape-scale UDF input.
  vbase::Rng rng(7);
  std::vector<uint8_t> payload(384);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const std::string expected = vjs::HostBase64(payload);

  struct Variant {
    const char* label;
    const visa::Image* image;
    bool snapshot;
  };
  const Variant variants[] = {
      {"virtine", &with_teardown, false},
      {"virtine+snapshot", &with_teardown, true},
      {"virtine NT", &no_teardown, false},
      {"virtine+snapshot+NT", &no_teardown, true},
  };

  constexpr int kTrials = 8;
  double native_us = 0;
  struct Row {
    std::string label;
    double mean_us;
  };
  std::vector<Row> rows;
  for (const Variant& variant : variants) {
    wasp::Runtime runtime;
    std::vector<double> cycles;
    for (int t = 0; t < kTrials; ++t) {
      wasp::VirtineSpec spec;
      spec.image = variant.image;
      spec.key = std::string("js-") + variant.label;
      spec.mem_size = 2ULL << 20;
      spec.policy = wasp::kPolicyManaged;
      spec.use_snapshot = variant.snapshot;
      spec.crt_snapshot = false;  // the engine snapshots after init (S6.5)
      spec.input = &payload;
      auto outcome = runtime.Invoke(spec);
      VB_CHECK(outcome.status.ok(), outcome.status.ToString());
      VB_CHECK(std::string(outcome.output.begin(), outcome.output.end()) == expected,
               "base64 output mismatch");
      cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
      // The guest returns rdtsc(init+run+teardown): the native baseline.
      // Only meaningful on non-snapshot runs of the full-teardown engine.
      if (variant.image == &with_teardown && !variant.snapshot) {
        native_us = vbase::CyclesToMicros(outcome.result_word);
      }
    }
    rows.push_back(
        {variant.label,
         vbase::CyclesToMicros(static_cast<uint64_t>(vbase::Summarize(cycles).mean))});
  }

  vbase::Table table({"configuration", "latency us", "slowdown vs native"});
  table.AddRow({"native engine (in-guest rdtsc)", vbase::Fmt(native_us, 1), "1.00x"});
  for (const Row& row : rows) {
    table.AddRow({row.label, vbase::Fmt(row.mean_us, 1),
                  vbase::Fmt(row.mean_us / native_us, 2) + "x"});
  }
  table.Print();
  std::printf("\n%d trials per variant; payload %zu B; hypercalls per invocation: 3 "
              "(snapshot, get_data, return_data).\n",
              kTrials, payload.size());
  return 0;
}
