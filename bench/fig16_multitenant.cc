// Figure 16 (this reproduction's addition): key-scoped resource governance
// under a multi-tenant mix.
//
// Three phases, all gated so ci.sh can smoke them:
//
// 1. Governance.  A hot *batch* key floods the platform at ~4x the
//    *interactive* key's mean arrival rate while the interactive key rides
//    through its own burst.  Every merged arrival becomes one real virtine
//    invocation through the wasp::Executor (mixed snapshot keys contending
//    for shells and affine generations); the measured modeled services are
//    then replayed deterministically under three admission disciplines via
//    vnet::GovernTrace:
//      * isolation  — the interactive tenant alone (its baseline),
//      * ungoverned — FIFO, no quota: the undifferentiated flood,
//      * governed   — per-key quota + weighted latency/batch dequeue.
//    Claim: governance keeps the interactive key's p99 modeled queue wait
//    within 2x of its isolation baseline (the ungoverned run blows far past
//    that) while aggregate completed RPS stays within 10% of ungoverned —
//    shedding the flood costs almost no total throughput because the batch
//    queue keeps the lanes fed.
//
// 2. Warm density.  COW extents turn the affine budget from a shell budget
//    into a working-set budget: a parked shell is charged its privatized
//    pages, the snapshot chain once per generation.  The same 6 MB budget
//    that held 6 full-copy 1 MB shells warm now keeps 64 keys warm
//    simultaneously — a >10x density gain — with zero evictions and zero
//    budget violations, the residency gauge conserving
//    (sum(shared + private) == resident) at every observation.  The loop
//    also runs the re-snapshot lifecycle: RecaptureSnapshot folds a subset
//    of keys' drift into delta children (shells stay warm under the new
//    generation), and RetireSnapshot drains everything back to zero.
//
// 3. Tiered quotas.  Three tenants (premium / standard / free) flood
//    identically at ~2.4x aggregate capacity; GovernanceOptions::
//    key_quota_overrides gives each tier its own admission cap (standard
//    deliberately rides the key_quota fallback, exercising override
//    resolution).  Claim: admission is monotone in tier — premium completes
//    more than standard, standard more than free — with every tier's quota
//    actually binding, purely from per-key override resolution over one
//    identical offered load.
//
//   ./fig16_multitenant           # full run
//   ./fig16_multitenant --quick   # CI smoke (shorter trace, same gates)
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/vjs/vjs.h"
#include "src/vnet/serverless.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/executor.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kLanes = 2;          // virtual serving lanes of the governed replay
constexpr int kMeasureLanes = 8;   // executor lanes of the measuring run
constexpr int kBatchWeight = 8;    // one batch dequeue per 8 under contention

// Warm modeled service of the 256-byte base64 function, measured on the real
// stack.  Every flood rate below is a multiple of the kLanes-lane replay
// capacity this implies, so the phase ratios — and therefore every gate —
// survive guest-compiler and interpreter speed changes.
double MeasuredCapacityRps(wasp::Runtime* runtime) {
  vnet::Vespid vespid(runtime);
  VB_CHECK(vespid.Register("calib", vjs::Base64ScriptSource()).ok(),
           "register failed");
  const std::vector<uint8_t> payload(256, 5);
  double total_us = 0;
  int warm = 0;
  for (int i = 0; i < 9; ++i) {
    auto inv = vespid.Invoke("calib", payload);
    VB_CHECK(inv.ok(), inv.status().ToString());
    if (inv->cold) {
      continue;
    }
    total_us += vbase::CyclesToMicros(inv->modeled_cycles);
    ++warm;
  }
  VB_CHECK(warm > 0, "no warm calibration invocations");
  const double warm_us = total_us / warm;
  const double capacity = static_cast<double>(kLanes) * 1e6 / warm_us;
  std::printf("calibration: warm service %.0f us -> %d-lane capacity %.0f rps\n",
              warm_us, kLanes, capacity);
  return capacity;
}

// Per-key jobs in the system (queued + running) as a fraction of capacity.
// Sized above the interactive tenant's own worst-case burst backlog (a 1.3x
// burst for 0.1 s queues ~0.03x capacity) and far below the flood's steady
// backlog (unbounded growth at 1.77x offered), so only the hot batch key
// sheds.  0.064 reproduces the historical quota of 128 at 2000 rps.
size_t KeyQuotaFor(double capacity_rps) {
  return static_cast<size_t>(0.064 * capacity_rps);
}

// The measured trace minus every other tenant: the interactive key's
// isolation baseline replays its own arrivals and measured services only.
vnet::MeasuredTrace FilterTenant(const vnet::MeasuredTrace& trace, int tenant) {
  vnet::MeasuredTrace out;
  out.names = {trace.names[static_cast<size_t>(tenant)]};
  out.classes = {trace.classes[static_cast<size_t>(tenant)]};
  for (size_t i = 0; i < trace.arrivals_us.size(); ++i) {
    if (trace.tenant[i] != tenant) {
      continue;
    }
    out.arrivals_us.push_back(trace.arrivals_us[i]);
    out.tenant.push_back(0);
    out.service_us.push_back(trace.service_us[i]);
    out.cold.push_back(trace.cold[i]);
  }
  return out;
}

void PrintReplayRow(vbase::Table& table, const std::string& run,
                    const vnet::GovernedReplay& replay, size_t tenant) {
  const vnet::TenantOutcome& t = replay.tenants[tenant];
  table.AddRow({run, t.name, std::to_string(t.offered), std::to_string(t.completed),
                vbase::Fmt(100.0 * t.shed_rate, 1) + "%",
                vbase::Fmt(t.mean_queue_wait_us, 0), vbase::Fmt(t.p99_queue_wait_us, 0),
                vbase::Fmt(replay.aggregate_rps, 0),
                vbase::Fmt(replay.fairness_index, 3)});
}

int RunGovernancePhase(bool quick) {
  std::printf("\n=== Phase 1: hot batch key vs interactive key ===\n");
  wasp::Runtime runtime;
  vnet::Vespid vespid(&runtime);
  VB_CHECK(vespid.Register("interactive", vjs::Base64ScriptSource()).ok(),
           "register failed");
  VB_CHECK(vespid.Register("batch", vjs::Base64ScriptSource()).ok(), "register failed");
  std::vector<uint8_t> payload(256, 5);

  // Rates are multiples of the measured two-lane capacity (historically
  // ~2000 rps at a ~1 ms warm service).  Interactive: steady 0.1x load with
  // a 1.3x burst *above* capacity, so its isolation baseline has real
  // self-queueing to compare against.  Batch: a flat 1.77x flood (the hot
  // key).  --quick shortens the phases; rates — and therefore every
  // capacity ratio — are identical.
  const double cap = MeasuredCapacityRps(&runtime);
  const double scale = quick ? 0.4 : 1.0;
  std::vector<vnet::TenantSpec> tenants(2);
  tenants[0].name = "interactive";
  tenants[0].klass = wasp::KeyClass::kLatency;
  tenants[0].phases = {{0.1 * cap, 0.125 * scale},
                       {1.3 * cap, 0.1 * scale},
                       {0.1 * cap, 0.125 * scale}};
  tenants[0].payload = payload;
  tenants[1].name = "batch";
  tenants[1].klass = wasp::KeyClass::kBatch;
  tenants[1].phases = {{1.77 * cap, 0.35 * scale}};
  tenants[1].payload = payload;

  auto trace = vespid.MeasureMultiTenant(tenants, kMeasureLanes, /*seed=*/42);
  VB_CHECK(trace.ok(), trace.status().ToString());
  const size_t interactive_offered =
      static_cast<size_t>(std::count(trace->tenant.begin(), trace->tenant.end(), 0));
  std::printf("measured %zu real invocations (%zu interactive, %zu batch) in %.2f s "
              "across %d executor lanes\n",
              trace->arrivals_us.size(), interactive_offered,
              trace->arrivals_us.size() - interactive_offered,
              static_cast<double>(trace->wall_ns) / 1e9, kMeasureLanes);

  // Three disciplines over identical measured services.
  vnet::GovernanceOptions isolation;
  isolation.lanes = kLanes;
  isolation.batch_weight = 0;
  const vnet::GovernedReplay baseline =
      vnet::GovernTrace(FilterTenant(*trace, 0), isolation);

  vnet::GovernanceOptions ungoverned;
  ungoverned.lanes = kLanes;
  ungoverned.batch_weight = 0;  // FIFO, no quota
  const vnet::GovernedReplay flood = vnet::GovernTrace(*trace, ungoverned);

  vnet::GovernanceOptions governed;
  governed.lanes = kLanes;
  governed.key_quota = KeyQuotaFor(cap);
  governed.batch_weight = kBatchWeight;
  const vnet::GovernedReplay fair = vnet::GovernTrace(*trace, governed);

  vbase::Table table({"run", "tenant", "offered", "completed", "shed", "mean wait us",
                      "p99 wait us", "agg rps", "fairness"});
  PrintReplayRow(table, "isolation", baseline, 0);
  PrintReplayRow(table, "ungoverned", flood, 0);
  PrintReplayRow(table, "ungoverned", flood, 1);
  PrintReplayRow(table, "governed", fair, 0);
  PrintReplayRow(table, "governed", fair, 1);
  table.Print();

  int failures = 0;
  const double base_p99 = baseline.tenants[0].p99_queue_wait_us;
  const double flood_p99 = flood.tenants[0].p99_queue_wait_us;
  const double fair_p99 = fair.tenants[0].p99_queue_wait_us;
  std::printf("\nClaim check: interactive p99 queue wait %.0f us isolated, %.0f us "
              "ungoverned (%.1fx), %.0f us governed (%.2fx; gate <= 2x)\n",
              base_p99, flood_p99, base_p99 > 0 ? flood_p99 / base_p99 : 0, fair_p99,
              base_p99 > 0 ? fair_p99 / base_p99 : 0);
  if (base_p99 <= 0 || fair_p99 > 2.0 * base_p99) {
    std::printf("FAIL: governed interactive p99 wait exceeds 2x the isolation baseline\n");
    ++failures;
  }
  if (flood_p99 <= 2.0 * base_p99) {
    std::printf("FAIL: ungoverned run should show the problem (p99 > 2x baseline)\n");
    ++failures;
  }
  const double rps_ratio =
      flood.aggregate_rps > 0 ? fair.aggregate_rps / flood.aggregate_rps : 0;
  std::printf("Claim check: aggregate completed RPS governed/ungoverned = %.3f "
              "(gate within 10%%)\n", rps_ratio);
  if (rps_ratio < 0.9 || rps_ratio > 1.1) {
    std::printf("FAIL: governance costs more than 10%% aggregate throughput\n");
    ++failures;
  }
  if (fair.tenants[0].shed_quota + fair.tenants[0].shed_overload != 0) {
    std::printf("FAIL: the interactive tenant must not be shed under governance\n");
    ++failures;
  }
  if (fair.tenants[1].shed_quota == 0) {
    std::printf("FAIL: the batch flood should shed at its quota\n");
    ++failures;
  }
  return failures;
}

// Three identical floods, three tiers of admission: only the quota override
// differs per tenant, so any outcome difference is the tier policy.
int RunTieredQuotaPhase(bool quick) {
  std::printf("\n=== Phase 3: three-tier per-key quota overrides ===\n");
  wasp::Runtime runtime;
  vnet::Vespid vespid(&runtime);
  const char* kTiers[3] = {"premium", "standard", "free"};
  std::vector<vnet::TenantSpec> tenants(3);
  const double cap = MeasuredCapacityRps(&runtime);
  const double scale = quick ? 0.4 : 1.0;
  for (size_t t = 0; t < 3; ++t) {
    VB_CHECK(vespid.Register(kTiers[t], vjs::Base64ScriptSource()).ok(),
             "register failed");
    tenants[t].name = kTiers[t];
    tenants[t].klass = wasp::KeyClass::kLatency;
    // Identical floods at 0.8x measured capacity each: together 2.4x the
    // two virtual lanes, so admission — not service — decides who completes.
    tenants[t].phases = {{0.8 * cap, 0.6 * scale}};
    tenants[t].payload = std::vector<uint8_t>(256, 5);
  }
  auto trace = vespid.MeasureMultiTenant(tenants, kMeasureLanes, /*seed=*/43);
  VB_CHECK(trace.ok(), trace.status().ToString());
  std::printf("measured %zu real invocations across %d executor lanes in %.2f s\n",
              trace->arrivals_us.size(), kMeasureLanes,
              static_cast<double>(trace->wall_ns) / 1e9);

  vnet::GovernanceOptions tiered;
  tiered.lanes = kLanes;
  // The tier table: premium and free are explicit overrides; standard is
  // deliberately *absent* so it resolves through the key_quota default —
  // both halves of QuotaFor are load-bearing in the gate below.
  tiered.key_quota = 32;
  tiered.key_quota_overrides = {{"premium", 64}, {"free", 8}};
  const vnet::GovernedReplay replay = vnet::GovernTrace(*trace, tiered);

  vbase::Table table({"run", "tenant", "offered", "completed", "shed", "mean wait us",
                      "p99 wait us", "agg rps", "fairness"});
  for (size_t t = 0; t < 3; ++t) {
    PrintReplayRow(table, "tiered", replay, t);
  }
  table.Print();

  int failures = 0;
  const vnet::TenantOutcome& premium = replay.tenants[0];
  const vnet::TenantOutcome& standard = replay.tenants[1];
  const vnet::TenantOutcome& free_tier = replay.tenants[2];
  std::printf("\nClaim check: completions monotone in tier under one identical flood "
              "-> premium %llu > standard %llu > free %llu\n",
              static_cast<unsigned long long>(premium.completed),
              static_cast<unsigned long long>(standard.completed),
              static_cast<unsigned long long>(free_tier.completed));
  if (!(premium.completed > standard.completed &&
        standard.completed > free_tier.completed)) {
    std::printf("FAIL: tier quotas did not order admission\n");
    ++failures;
  }
  if (!(free_tier.shed_rate > standard.shed_rate &&
        standard.shed_rate > premium.shed_rate)) {
    std::printf("FAIL: shed rates should be anti-monotone in tier\n");
    ++failures;
  }
  for (size_t t = 0; t < 3; ++t) {
    if (replay.tenants[t].shed_quota == 0) {
      std::printf("FAIL: the %s tier's quota never bound under a 2.4x flood\n",
                  kTiers[t]);
      ++failures;
    }
  }
  return failures;
}

// Asserts the residency gauge's conservation invariant on one consistent
// accounting snapshot; returns the gauge.
uint64_t CheckedResident(wasp::Pool& pool, int* failures) {
  const wasp::AffineAccounting acct = pool.affine_accounting();
  uint64_t sum = 0;
  for (const auto& gen : acct.generations) {
    sum += gen.shared_bytes + gen.private_bytes;
  }
  if (sum != acct.resident_bytes) {
    std::printf("FAIL: gauge conservation violated (%llu != %llu)\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(acct.resident_bytes));
    ++*failures;
  }
  return acct.resident_bytes;
}

int RunDensityPhase(bool quick) {
  std::printf("\n=== Phase 2: COW warm density under the full-copy-era budget ===\n");
  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());

  // The 6 MB budget held 6 full-copy 1 MB shells warm (each parked shell
  // charged its whole memory).  Under COW extents a parked shell is charged
  // its privatized pages only, the snapshot chain once per generation — so
  // the same budget must keep all 64 keys warm simultaneously, with zero
  // evictions and zero violations: a >10x warm-density gain.
  constexpr uint64_t kMb = 1ULL << 20;
  constexpr int kKeys = 64;
  constexpr int kFullCopyCapacity = 6;  // keys the old accounting kept warm
  wasp::RuntimeOptions options;
  options.clean_mode = wasp::CleanMode::kAsync;
  options.affine_budget_bytes = 6 * kMb;
  wasp::Runtime runtime(options);
  runtime.pool().Prewarm(runtime.MakeVmConfig(1 * kMb), kKeys + 2);

  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.use_snapshot = true;
  spec.word_bytes = 8;
  wasp::ArgPacker packer(spec.word_bytes);
  packer.AddWord(12);
  spec.args_page = packer.Finish();

  const int rounds = quick ? 2 : 4;
  int failures = 0;
  vbase::Table table({"round", "warm keys", "peak resident", "budget", "evictions",
                      "recaptured", "retired"});
  wasp::PoolStats prev = runtime.pool().stats();
  for (int round = 0; round < rounds; ++round) {
    // Sweep the key population: one cold (capture) + one warm (affine
    // restore) invocation per key, checking budget + conservation after
    // every park.
    uint64_t peak_resident = 0;
    for (int k = 0; k < kKeys; ++k) {
      spec.key = "svc-" + std::to_string(k);
      for (int warm = 0; warm < 2; ++warm) {
        const wasp::RunOutcome outcome = runtime.Invoke(spec);
        VB_CHECK(outcome.status.ok(), outcome.status.ToString());
        if (outcome.result_word != 144) {  // fib(12)
          ++failures;
        }
        const uint64_t resident = CheckedResident(runtime.pool(), &failures);
        peak_resident = std::max(peak_resident, resident);
        if (resident > options.affine_budget_bytes) {
          std::printf("FAIL: round %d key %d parked %llu affine bytes over budget\n",
                      round, k, static_cast<unsigned long long>(resident));
          ++failures;
        }
      }
    }
    // The density claim: every key's shell is still parked warm — nothing
    // was evicted to make room.
    const size_t warm_keys = runtime.pool().TotalAffineShells();
    if (warm_keys < kKeys) {
      std::printf("FAIL: round %d holds only %zu of %d keys warm\n", round, warm_keys,
                  kKeys);
      ++failures;
    }
    // Re-snapshot lifecycle, delta edition: fold every 8th key's drift into
    // a chain child.  The stolen shell re-parks warm under the new
    // generation, so the key stays warm (and its next invocation is still an
    // affine hit).
    uint64_t recaptured = 0;
    for (int k = 0; k < kKeys; k += 8) {
      spec.key = "svc-" + std::to_string(k);
      const wasp::RecaptureOutcome rc = runtime.RecaptureSnapshot(spec.key);
      if (rc.status != wasp::RecaptureOutcome::Status::kRecaptured) {
        std::printf("FAIL: round %d recapture of %s did not fold drift (status %d)\n",
                    round, spec.key.c_str(), static_cast<int>(rc.status));
        ++failures;
        continue;
      }
      ++recaptured;
      CheckedResident(runtime.pool(), &failures);
      const wasp::RunOutcome outcome = runtime.Invoke(spec);
      VB_CHECK(outcome.status.ok(), outcome.status.ToString());
      if (!outcome.stats.affine_restore || outcome.result_word != 144) {
        std::printf("FAIL: round %d %s not warm after recapture\n", round,
                    spec.key.c_str());
        ++failures;
      }
    }
    // Retire every key (snapshot drop): parked shells of live generations
    // must be reclaimed eagerly, leaving nothing resident.
    for (int k = 0; k < kKeys; ++k) {
      const std::string key = "svc-" + std::to_string(k);
      const wasp::SnapshotRef snap = runtime.snapshots().Find(key);
      VB_CHECK(snap != nullptr, "snapshot missing after warm sweep");
      runtime.RetireSnapshot(key);
      if (runtime.pool().AffineShells(snap->generation) != 0) {
        std::printf("FAIL: round %d left shells parked under retired %s\n", round,
                    key.c_str());
        ++failures;
      }
    }
    runtime.pool().DrainCleaner();
    const wasp::PoolStats stats = runtime.pool().stats();
    const uint64_t evictions = stats.affine_evictions - prev.affine_evictions;
    const uint64_t retired = stats.affine_retired - prev.affine_retired;
    table.AddRow({std::to_string(round), std::to_string(warm_keys),
                  std::to_string(peak_resident), std::to_string(options.affine_budget_bytes),
                  std::to_string(evictions), std::to_string(recaptured),
                  std::to_string(retired)});
    // COW density: the whole population fits, so the budget never evicts.
    if (evictions != 0) {
      std::printf("FAIL: round %d evicted %llu shells despite COW headroom\n", round,
                  static_cast<unsigned long long>(evictions));
      ++failures;
    }
    if (CheckedResident(runtime.pool(), &failures) != 0) {
      std::printf("FAIL: round %d retired generations not fully reclaimed\n", round);
      ++failures;
    }
    prev = stats;
  }
  table.Print();
  const wasp::PoolStats stats = runtime.pool().stats();
  std::printf("\nClaim check: %d keys (%.1fx the full-copy capacity of %d) stayed warm "
              "under the same %llu MB budget; zero violations, %llu evictions, %llu eager "
              "retirements across %d rounds.\n",
              kKeys, static_cast<double>(kKeys) / kFullCopyCapacity, kFullCopyCapacity,
              static_cast<unsigned long long>(options.affine_budget_bytes >> 20),
              static_cast<unsigned long long>(stats.affine_evictions),
              static_cast<unsigned long long>(stats.affine_retired), rounds);
  if (kKeys < 10 * kFullCopyCapacity) {
    std::printf("FAIL: density gain below 10x\n");
    ++failures;
  }
  if (stats.affine_retired == 0) {
    std::printf("FAIL: the retire loop exercised no retirement\n");
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  benchutil::Header(
      "Figure 16: key-scoped governance — per-key quotas, priority lanes, COW density",
      "per-key quotas + weighted class dequeue bound the interactive key's p99 queue "
      "wait within 2x of isolation under a 4x hot-key flood at <10% aggregate RPS "
      "cost, and COW extents keep 10x more keys warm under the same resident budget");

  int failures = RunGovernancePhase(quick);
  failures += RunDensityPhase(quick);
  failures += RunTieredQuotaPhase(quick);
  if (failures > 0) {
    std::printf("\nFAIL: %d governance gate(s) violated\n", failures);
    return 1;
  }
  std::printf("\nOK: governance bounds interactive tail wait and parked residency; "
              "aggregate throughput preserved.\n");
  return 0;
}
