// Figure 3: latency to run fib(20) in the three classic x86 operating modes.
//
// The same mode-agnostic fib guest runs under the real16, prot32, and
// long64 environments; measured from KVM_RUN entry to the hlt exit,
// Tukey-filtered as in the paper (Section 4.2, footnote 3).
#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/vkvm/vkvm.h"
#include "src/wasp/abi.h"

int main() {
  benchutil::Header(
      "Figure 3: fib(20) latency by processor mode (entry -> exit)",
      "real-mode execution skips the expensive boot components (~10K+ cycles saved); "
      "protected and long mode are essentially the same");

  constexpr int kTrials = 100;
  vbase::Table table({"mode", "mean cycles", "min cycles", "mean us", "boot components"});
  for (vrt::Env env : {vrt::Env::kReal16, vrt::Env::kProt32, vrt::Env::kLong64}) {
    auto image = vrt::BuildImage(env, vrt::FibSource());
    VB_CHECK(image.ok(), image.status().ToString());
    const int w = vrt::WordBytes(env);
    std::vector<double> samples;
    size_t boot_events = 0;
    for (int t = 0; t < kTrials; ++t) {
      auto vm = vkvm::Vm::Create(vkvm::VmConfig{});
      VB_CHECK(vm->LoadBlob(image->load_addr, image->bytes.data(), image->bytes.size()).ok(),
               "");
      uint64_t boot_info[2] = {vm->memory().size(), 0};
      VB_CHECK(vm->memory().Write(wasp::kBootInfoAddr, boot_info, sizeof(boot_info)).ok(), "");
      // Argument page in the environment's word size: ret, argc=1, n=20.
      std::vector<uint8_t> args(static_cast<size_t>(w) * 3, 0);
      args[static_cast<size_t>(w)] = 1;
      args[static_cast<size_t>(w) * 2] = 20;
      VB_CHECK(vm->memory().Write(wasp::kArgPageAddr, args.data(), args.size()).ok(), "");
      vm->ResetVcpu(image->entry);
      vm->cpu().set_reg(visa::kSp, wasp::kRealModeStackTop);
      const uint64_t before = vm->total_cycles();  // excludes VM creation
      auto run = vm->Run();
      VB_CHECK(run.reason == vkvm::ExitReason::kHlt, run.fault);
      // Verify the result while we are here.
      uint64_t result = 0;
      VB_CHECK(vm->memory().Read(0, &result, static_cast<uint64_t>(w)).ok(), "");
      VB_CHECK(result == 6765, "fib(20) wrong in " << vrt::EnvName(env) << ": " << result);
      samples.push_back(static_cast<double>(vm->total_cycles() - before));
      boot_events = vm->cpu().milestones().size();
    }
    const std::vector<double> filtered = vbase::TukeyFilter(samples);
    const vbase::Summary s = vbase::Summarize(filtered);
    table.AddRow({vrt::EnvName(env), benchutil::Cycles(s.mean), benchutil::Cycles(s.min),
                  benchutil::Us(s.mean), std::to_string(boot_events)});
  }
  table.Print();
  std::printf("\n%d trials per mode, Tukey outliers removed; same fib binary in all modes.\n",
              kTrials);
  return 0;
}
