// Figure 13: HTTP server latency (a) and harmonic-mean throughput (b) with
// each request handled natively vs in a virtine (with/without snapshots),
// served *concurrently*: every connection is dispatched through the
// ConcurrentHttpServer's executor, and the sweep widens the server from 1
// to 8 lanes.
//
// Every virtine request performs the paper's seven host interactions.  The
// native baseline is the same handler logic with all virtualization charges
// stripped (DESIGN.md S2).  Throughput is the harmonic mean of per-request
// throughput, as in the paper; per-request latency (queue wait + service)
// comes from the deterministic virtual-time closed loop over the *measured*
// modeled service cost of each real request, so the lane scaling is
// machine-independent (wall time on an oversubscribed host cannot express
// lane parallelism — same convention as fig9's modeled makespan).
//
// `--quick` runs a small 2-lane smoke of all three modes and exits non-zero
// on any wrong response or counter mismatch (the ci.sh gate for the
// concurrent serving path).
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/wasp/channel.h"
#include "src/wasp/runtime.h"

namespace {

constexpr const char* kRequest = "GET /static.html HTTP/1.0\r\n\r\n";
constexpr size_t kBodySize = 8192;

struct SweepResult {
  vnet::LoadResult virt;             // virtual-time closed loop (deterministic)
  std::vector<double> deisolated_us; // per-request de-isolated service (virtine modes)
  vnet::ServerCounters counters;
  double wall_seconds = 0;
  int bad_responses = 0;
};

// Runs `clients` closed-loop client threads against a fresh
// ConcurrentHttpServer with `lanes` lanes; returns the deterministic
// virtual-time load result over the measured per-request services.
SweepResult RunSweep(wasp::Runtime* runtime, wasp::HostEnv* files, int lanes, int clients,
                     int per_client, vnet::ServeMode mode) {
  vnet::ConcurrentServerOptions options;
  options.lanes = lanes;
  options.max_queue_depth = static_cast<size_t>(2 * clients);
  options.block_when_full = true;  // closed-loop clients wait, never shed
  vnet::ConcurrentHttpServer server(runtime, files, options);

  SweepResult sweep;
  std::mutex mu;
  std::vector<double> services_us;
  vbase::WallTimer timer;
  auto fn = [&]() -> double {
    wasp::ByteChannel channel;
    channel.host().WriteString(kRequest);
    auto stats = server.SubmitConnection(channel, mode).get();
    if (!stats.ok() || stats->status != 200) {
      std::lock_guard<std::mutex> lock(mu);
      ++sweep.bad_responses;
      return -1;
    }
    auto response = channel.host().Drain();
    if (response.size() < kBodySize) {
      std::lock_guard<std::mutex> lock(mu);
      ++sweep.bad_responses;
      return -1;
    }
    if (mode != vnet::ServeMode::kNative) {
      // The native handler has no modeled guest; its virtual-time baseline
      // is built by the caller from the snapshot run's de-isolated services,
      // so only virtine-mode services are collected here.
      std::lock_guard<std::mutex> lock(mu);
      services_us.push_back(vbase::CyclesToMicros(stats->modeled_cycles));
      sweep.deisolated_us.push_back(vbase::CyclesToMicros(stats->deisolated_cycles));
    }
    return 0;
  };
  vnet::RunClosedLoop(clients, per_client, fn);
  sweep.wall_seconds = static_cast<double>(timer.ElapsedNanos()) / 1e9;
  if (mode != vnet::ServeMode::kNative) {
    sweep.virt = vnet::ClosedLoopVirtualTime(clients, lanes, services_us);
  }
  sweep.counters = server.counters(mode);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  benchutil::Header(
      "Figure 13: HTTP static-file server, native vs virtine handlers, 1-8 lanes",
      "virtines with snapshotting lose only ~12% throughput vs native despite 7 "
      "hypercalls per request, and the executor-backed server scales with its lanes");

  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/static.html", std::string(kBodySize, 'v'));

  const int clients = quick ? 4 : 8;
  const int per_client = quick ? 6 : 16;
  const std::vector<int> lane_sweep = quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};
  const vnet::ServeMode modes[] = {vnet::ServeMode::kNative, vnet::ServeMode::kVirtine,
                                   vnet::ServeMode::kVirtineSnapshot};

  int failures = 0;
  double snapshot_rps_1lane = 0;
  double snapshot_rps_8lane = 0;
  for (const int lanes : lane_sweep) {
    std::printf("\n--- %d lane(s), %d clients x %d requests per mode ---\n", lanes, clients,
                per_client);
    vbase::Table table({"handler", "mean latency us", "p99 us", "throughput rps",
                        "vs native", "wall s"});
    double native_rps = 0;
    SweepResult results[3];
    for (int m = 0; m < 3; ++m) {
      results[m] = RunSweep(&runtime, &files, lanes, clients, per_client, modes[m]);
      failures += results[m].bad_responses;
      const vnet::ServerCounters& ctr = results[m].counters;
      const uint64_t total = static_cast<uint64_t>(clients) * per_client;
      if (ctr.accepted != total || ctr.completed != total || ctr.rejected != 0 ||
          ctr.status_2xx != total || ctr.errors != 0) {
        std::printf("counter mismatch (%s, %d lanes): accepted=%llu completed=%llu "
                    "rejected=%llu 2xx=%llu errors=%llu, want %llu\n",
                    vnet::ServeModeName(modes[m]), lanes,
                    static_cast<unsigned long long>(ctr.accepted),
                    static_cast<unsigned long long>(ctr.completed),
                    static_cast<unsigned long long>(ctr.rejected),
                    static_cast<unsigned long long>(ctr.status_2xx),
                    static_cast<unsigned long long>(ctr.errors),
                    static_cast<unsigned long long>(total));
        ++failures;
      }
    }
    // Native baseline in the modeled currency: the de-isolated service cost
    // of the snapshot run (same handler logic, VM-exit charges stripped)
    // pushed through the same virtual-time closed loop.
    const vnet::LoadResult native_virt =
        vnet::ClosedLoopVirtualTime(clients, lanes, results[2].deisolated_us);
    native_rps = native_virt.harmonic_mean_rps;
    table.AddRow({"native (modeled)", vbase::Fmt(native_virt.latency.mean, 1),
                  vbase::Fmt(native_virt.latency.p99, 1), vbase::Fmt(native_rps, 0), "1.00x",
                  vbase::Fmt(results[0].wall_seconds, 2)});
    for (int m = 1; m < 3; ++m) {
      const vnet::LoadResult& load = results[m].virt;
      table.AddRow({vnet::ServeModeName(modes[m]), vbase::Fmt(load.latency.mean, 1),
                    vbase::Fmt(load.latency.p99, 1), vbase::Fmt(load.harmonic_mean_rps, 0),
                    vbase::Fmt(native_rps > 0 ? load.harmonic_mean_rps / native_rps : 0, 2) +
                        "x",
                    vbase::Fmt(results[m].wall_seconds, 2)});
    }
    table.Print();
    if (lanes == 1) {
      snapshot_rps_1lane = results[2].virt.harmonic_mean_rps;
    }
    if (lanes == 8) {
      snapshot_rps_8lane = results[2].virt.harmonic_mean_rps;
    }
  }

  if (!quick && snapshot_rps_1lane > 0) {
    const double scaling = snapshot_rps_8lane / snapshot_rps_1lane;
    std::printf("\nClaim check: virtine+snapshot harmonic-mean RPS scales %.2fx from 1 to 8 "
                "lanes (floor: 3x); %d closed-loop clients.\n", scaling, clients);
    if (scaling < 3.0) {
      std::printf("FAIL: 8-lane scaling %.2fx below the 3x floor\n", scaling);
      ++failures;
    }
  }
  if (failures > 0) {
    std::printf("\nFAIL: %d bad responses / counter mismatches\n", failures);
    return 1;
  }
  std::printf("\nOK: all responses 200 with full bodies; admission counters consistent.\n");
  return 0;
}
