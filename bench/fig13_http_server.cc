// Figure 13: HTTP server latency (a) and harmonic-mean throughput (b) with
// each request handled natively vs in a virtine (with/without snapshots),
// served *concurrently*: every connection is dispatched through the
// ConcurrentHttpServer's executor, and the sweep widens the server from 1
// to 8 lanes.
//
// Every virtine request performs the paper's seven host interactions.  The
// native baseline is the same handler logic with all virtualization charges
// stripped (DESIGN.md S2).  Throughput is the harmonic mean of per-request
// throughput, as in the paper; per-request latency (queue wait + service)
// comes from the deterministic virtual-time closed loop over the *measured*
// modeled service cost of each real request, so the lane scaling is
// machine-independent (wall time on an oversubscribed host cannot express
// lane parallelism — same convention as fig9's modeled makespan).
//
// A second, real-socket phase measures the keep-alive win end to end: a
// vnet::Listener (epoll accept loop) fronts the same server on 127.0.0.1 and
// RunSocketClosedLoop sweeps the connection-reuse axis (requests per TCP
// connection 1 -> 64).  Reuse amortizes the per-connection charges — TCP
// connect + accept, executor dispatch, and in the virtine modes a shell
// acquire + snapshot restore per connection — over many requests served by
// the one held shell, so wall RPS climbs with reuse.  These numbers are wall
// time over loopback: host-dependent, unlike the modeled sweep above.
//
// `--quick` runs a small 2-lane smoke of all three modes and exits non-zero
// on any wrong response or counter mismatch (the ci.sh gate for the
// concurrent serving path) plus the keep-alive gate: snapshot-mode RPS at 8
// requests/connection must beat connection-per-request RPS.  The full run
// additionally gates reuse=64 >= 2x reuse=1 in snapshot mode.  `--soak S`
// replaces the sweeps with a wall-clock-paced soak: every client loops until
// the deadline, and the run fails on any bad response or counter drift.
// `--json PATH` writes the machine-readable results.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/vnet/listener.h"
#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/wasp/channel.h"
#include "src/wasp/runtime.h"

namespace {

constexpr const char* kRequest = "GET /static.html HTTP/1.0\r\n\r\n";
constexpr size_t kBodySize = 8192;

struct SweepResult {
  vnet::LoadResult virt;             // virtual-time closed loop (deterministic)
  std::vector<double> deisolated_us; // per-request de-isolated service (virtine modes)
  vnet::ServerCounters counters;
  double wall_seconds = 0;
  int bad_responses = 0;
};

// Runs `clients` closed-loop client threads against a fresh
// ConcurrentHttpServer with `lanes` lanes; returns the deterministic
// virtual-time load result over the measured per-request services.
SweepResult RunSweep(wasp::Runtime* runtime, wasp::HostEnv* files, int lanes, int clients,
                     int per_client, vnet::ServeMode mode) {
  vnet::ConcurrentServerOptions options;
  options.lanes = lanes;
  options.max_queue_depth = static_cast<size_t>(2 * clients);
  options.block_when_full = true;  // closed-loop clients wait, never shed
  vnet::ConcurrentHttpServer server(runtime, files, options);

  SweepResult sweep;
  std::mutex mu;
  std::vector<double> services_us;
  vbase::WallTimer timer;
  auto fn = [&]() -> double {
    wasp::ByteChannel channel;
    channel.host().WriteString(kRequest);
    auto stats = server.SubmitConnection(channel, mode).get();
    if (!stats.ok() || stats->status != 200) {
      std::lock_guard<std::mutex> lock(mu);
      ++sweep.bad_responses;
      return -1;
    }
    auto response = channel.host().Drain();
    if (response.size() < kBodySize) {
      std::lock_guard<std::mutex> lock(mu);
      ++sweep.bad_responses;
      return -1;
    }
    if (mode != vnet::ServeMode::kNative) {
      // The native handler has no modeled guest; its virtual-time baseline
      // is built by the caller from the snapshot run's de-isolated services,
      // so only virtine-mode services are collected here.
      std::lock_guard<std::mutex> lock(mu);
      services_us.push_back(vbase::CyclesToMicros(stats->modeled_cycles));
      sweep.deisolated_us.push_back(vbase::CyclesToMicros(stats->deisolated_cycles));
    }
    return 0;
  };
  vnet::RunClosedLoop(clients, per_client, fn);
  sweep.wall_seconds = static_cast<double>(timer.ElapsedNanos()) / 1e9;
  if (mode != vnet::ServeMode::kNative) {
    sweep.virt = vnet::ClosedLoopVirtualTime(clients, lanes, services_us);
  }
  sweep.counters = server.counters(mode);
  return sweep;
}

// One point of the real-socket connection-reuse sweep: a fresh listener +
// server pair, `clients` socket client threads, `reuse` requests per TCP
// connection.  In fixed-count mode each client spends per_client requests;
// duration_s > 0 switches to the wall-clock-paced soak.
struct SocketPoint {
  int reuse = 1;
  double rps = 0;       // completed requests / wall seconds (measured, wall)
  double mean_us = 0;
  double p99_us = 0;
  uint64_t requests = 0;
  uint64_t failures = 0;
  vnet::ServerCounters counters;
  vnet::ListenerStats lstats;
  int mismatches = 0;
};

SocketPoint RunSocketPoint(wasp::Runtime* runtime, wasp::HostEnv* files,
                           vnet::ServeMode mode, int lanes, int clients, int per_client,
                           int reuse, double duration_s) {
  vnet::ConcurrentServerOptions sopts;
  sopts.lanes = lanes;
  sopts.max_queue_depth = static_cast<size_t>(4 * clients);
  sopts.block_when_full = false;  // the epoll loop must never block on admission
  vnet::ConcurrentHttpServer server(runtime, files, sopts);
  vnet::ListenerOptions lopts;
  lopts.mode = mode;
  vnet::Listener listener(&server, lopts);
  VB_CHECK(listener.Start().ok(), "listener start failed");

  vnet::SocketLoadOptions load;
  load.port = listener.port();
  load.clients = clients;
  load.requests_per_client = per_client;
  load.requests_per_connection = reuse;
  // The paper's httpd serves a small index page; a small object also keeps
  // the per-request guest byte-copy cost from drowning the per-connection
  // charges the reuse axis is measuring.
  load.target = "/index.html";
  load.duration_s = duration_s;
  const vnet::LoadResult result = vnet::RunSocketClosedLoop(load);
  // Clients never wait for the server's FIN; Stop() drains every in-flight
  // connection job so the counters below are settled.
  listener.Stop();

  SocketPoint pt;
  pt.reuse = reuse;
  pt.requests = result.latencies_us.size();
  pt.failures = result.failures;
  pt.rps = result.wall_seconds > 0 ? static_cast<double>(pt.requests) / result.wall_seconds
                                   : 0;
  pt.mean_us = result.latency.mean;
  pt.p99_us = result.latency.p99;
  pt.counters = server.counters(mode);
  pt.lstats = listener.stats();

  // Consistency: every socket request the clients counted must have been
  // forwarded by the listener, served 200 by a lane, and nothing rejected.
  if (pt.failures != 0 || pt.counters.requests != pt.requests ||
      pt.counters.status_2xx != pt.requests ||
      pt.lstats.requests_forwarded != pt.requests || pt.counters.rejected != 0 ||
      pt.lstats.edge_400 != 0 || pt.lstats.edge_413 != 0) {
    ++pt.mismatches;
  }
  if (duration_s <= 0) {
    // Fixed-count mode has exact expectations: per_client % reuse == 0, so
    // every connection carries exactly `reuse` requests.
    const uint64_t total = static_cast<uint64_t>(clients) * per_client;
    const uint64_t conns = total / static_cast<uint64_t>(reuse);
    if (pt.requests != total || pt.lstats.accepted != conns ||
        pt.counters.keepalive_reused != total - conns) {
      ++pt.mismatches;
    }
  }
  if (pt.mismatches > 0) {
    std::printf(
        "socket counter mismatch (%s, reuse=%d): client_ok=%llu failures=%llu "
        "served=%llu 2xx=%llu reused=%llu forwarded=%llu accepted=%llu "
        "edge_400=%llu edge_413=%llu rejected=%llu\n",
        vnet::ServeModeName(mode), reuse, static_cast<unsigned long long>(pt.requests),
        static_cast<unsigned long long>(pt.failures),
        static_cast<unsigned long long>(pt.counters.requests),
        static_cast<unsigned long long>(pt.counters.status_2xx),
        static_cast<unsigned long long>(pt.counters.keepalive_reused),
        static_cast<unsigned long long>(pt.lstats.requests_forwarded),
        static_cast<unsigned long long>(pt.lstats.accepted),
        static_cast<unsigned long long>(pt.lstats.edge_400),
        static_cast<unsigned long long>(pt.lstats.edge_413),
        static_cast<unsigned long long>(pt.counters.rejected));
  }
  return pt;
}

void WriteJson(const std::string& path,
               const std::vector<std::pair<std::string, std::vector<SocketPoint>>>& sweeps,
               double snapshot_gate_ratio) {
  FILE* f = std::fopen(path.c_str(), "w");
  VB_CHECK(f != nullptr, "cannot open " << path);
  std::fprintf(f, "{\n  \"socket_reuse_sweep\": {\n");
  for (size_t m = 0; m < sweeps.size(); ++m) {
    std::fprintf(f, "    \"%s\": [\n", sweeps[m].first.c_str());
    const std::vector<SocketPoint>& pts = sweeps[m].second;
    for (size_t i = 0; i < pts.size(); ++i) {
      const SocketPoint& p = pts[i];
      std::fprintf(f,
                   "      {\"requests_per_connection\": %d, \"rps\": %.0f, "
                   "\"mean_us\": %.1f, \"p99_us\": %.1f, \"requests\": %llu, "
                   "\"connections\": %llu, \"keepalive_reused\": %llu}%s\n",
                   p.reuse, p.rps, p.mean_us, p.p99_us,
                   static_cast<unsigned long long>(p.requests),
                   static_cast<unsigned long long>(p.lstats.accepted),
                   static_cast<unsigned long long>(p.counters.keepalive_reused),
                   i + 1 < pts.size() ? "," : "");
    }
    std::fprintf(f, "    ]%s\n", m + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"snapshot_reuse_gate_ratio\": %.2f\n}\n",
               snapshot_gate_ratio);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double soak_s = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak_s = 6.0;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        soak_s = std::atof(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  benchutil::Header(
      "Figure 13: HTTP static-file server, native vs virtine handlers, 1-8 lanes",
      "virtines with snapshotting lose only ~12% throughput vs native despite 7 "
      "hypercalls per request, and the executor-backed server scales with its lanes");

  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/static.html", std::string(kBodySize, 'v'));
  // Small index page for the real-socket reuse sweep (paper-style httpd
  // object; the modeled sweep above keeps the 8 KB body).
  files.PutFile("/index.html", std::string(512, 'k'));

  const vnet::ServeMode all_modes[] = {vnet::ServeMode::kNative, vnet::ServeMode::kVirtine,
                                       vnet::ServeMode::kVirtineSnapshot};

  if (soak_s > 0) {
    // Wall-clock-paced soak over real sockets: every client loops until the
    // deadline; the run fails on any bad response or counter drift.
    int soak_failures = 0;
    std::printf("\n--- soak: %.0f s per mode, 4 clients, 16 requests/connection ---\n",
                soak_s);
    vbase::Table table({"handler", "requests", "rps", "p99 us", "connections", "reused"});
    for (const vnet::ServeMode mode : all_modes) {
      const SocketPoint pt =
          RunSocketPoint(&runtime, &files, mode, /*lanes=*/4, /*clients=*/4,
                         /*per_client=*/0, /*reuse=*/16, soak_s);
      soak_failures += pt.mismatches;
      table.AddRow({vnet::ServeModeName(mode), std::to_string(pt.requests),
                    vbase::Fmt(pt.rps, 0), vbase::Fmt(pt.p99_us, 1),
                    std::to_string(pt.lstats.accepted),
                    std::to_string(pt.counters.keepalive_reused)});
    }
    table.Print();
    if (soak_failures > 0) {
      std::printf("\nFAIL: %d soak counter mismatches\n", soak_failures);
      return 1;
    }
    std::printf("\nOK: soak clean — every socket request served 200, counters settled.\n");
    return 0;
  }

  const int clients = quick ? 4 : 8;
  const int per_client = quick ? 6 : 16;
  const std::vector<int> lane_sweep = quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};
  const vnet::ServeMode modes[] = {vnet::ServeMode::kNative, vnet::ServeMode::kVirtine,
                                   vnet::ServeMode::kVirtineSnapshot};

  int failures = 0;
  double snapshot_rps_1lane = 0;
  double snapshot_rps_8lane = 0;
  for (const int lanes : lane_sweep) {
    std::printf("\n--- %d lane(s), %d clients x %d requests per mode ---\n", lanes, clients,
                per_client);
    vbase::Table table({"handler", "mean latency us", "p99 us", "throughput rps",
                        "vs native", "wall s"});
    double native_rps = 0;
    SweepResult results[3];
    for (int m = 0; m < 3; ++m) {
      results[m] = RunSweep(&runtime, &files, lanes, clients, per_client, modes[m]);
      failures += results[m].bad_responses;
      const vnet::ServerCounters& ctr = results[m].counters;
      const uint64_t total = static_cast<uint64_t>(clients) * per_client;
      if (ctr.accepted != total || ctr.completed != total || ctr.rejected != 0 ||
          ctr.status_2xx != total || ctr.errors != 0) {
        std::printf("counter mismatch (%s, %d lanes): accepted=%llu completed=%llu "
                    "rejected=%llu 2xx=%llu errors=%llu, want %llu\n",
                    vnet::ServeModeName(modes[m]), lanes,
                    static_cast<unsigned long long>(ctr.accepted),
                    static_cast<unsigned long long>(ctr.completed),
                    static_cast<unsigned long long>(ctr.rejected),
                    static_cast<unsigned long long>(ctr.status_2xx),
                    static_cast<unsigned long long>(ctr.errors),
                    static_cast<unsigned long long>(total));
        ++failures;
      }
    }
    // Native baseline in the modeled currency: the de-isolated service cost
    // of the snapshot run (same handler logic, VM-exit charges stripped)
    // pushed through the same virtual-time closed loop.
    const vnet::LoadResult native_virt =
        vnet::ClosedLoopVirtualTime(clients, lanes, results[2].deisolated_us);
    native_rps = native_virt.harmonic_mean_rps;
    table.AddRow({"native (modeled)", vbase::Fmt(native_virt.latency.mean, 1),
                  vbase::Fmt(native_virt.latency.p99, 1), vbase::Fmt(native_rps, 0), "1.00x",
                  vbase::Fmt(results[0].wall_seconds, 2)});
    for (int m = 1; m < 3; ++m) {
      const vnet::LoadResult& load = results[m].virt;
      table.AddRow({vnet::ServeModeName(modes[m]), vbase::Fmt(load.latency.mean, 1),
                    vbase::Fmt(load.latency.p99, 1), vbase::Fmt(load.harmonic_mean_rps, 0),
                    vbase::Fmt(native_rps > 0 ? load.harmonic_mean_rps / native_rps : 0, 2) +
                        "x",
                    vbase::Fmt(results[m].wall_seconds, 2)});
    }
    table.Print();
    if (lanes == 1) {
      snapshot_rps_1lane = results[2].virt.harmonic_mean_rps;
    }
    if (lanes == 8) {
      snapshot_rps_8lane = results[2].virt.harmonic_mean_rps;
    }
  }

  if (!quick && snapshot_rps_1lane > 0) {
    const double scaling = snapshot_rps_8lane / snapshot_rps_1lane;
    std::printf("\nClaim check: virtine+snapshot harmonic-mean RPS scales %.2fx from 1 to 8 "
                "lanes (floor: 3x); %d closed-loop clients.\n", scaling, clients);
    if (scaling < 3.0) {
      std::printf("FAIL: 8-lane scaling %.2fx below the 3x floor\n", scaling);
      ++failures;
    }
  }

  // ---- Real-socket connection-reuse sweep (wall time over loopback) ----
  const std::vector<int> reuse_sweep = quick ? std::vector<int>{1, 8}
                                             : std::vector<int>{1, 8, 64};
  const int sock_clients = quick ? 4 : 8;
  // Divisible by every reuse value, so fixed-count expectations are exact.
  const int sock_per_client = quick ? 64 : 192;
  std::printf("\n--- real sockets: epoll listener, %d clients x %d requests, "
              "requests/connection %d -> %d ---\n",
              sock_clients, sock_per_client, reuse_sweep.front(), reuse_sweep.back());
  std::vector<std::pair<std::string, std::vector<SocketPoint>>> socket_sweeps;
  for (const vnet::ServeMode mode : all_modes) {
    vbase::Table table({"handler", "reuse", "rps (wall)", "mean us", "p99 us",
                        "connections", "reused"});
    std::vector<SocketPoint> points;
    for (const int reuse : reuse_sweep) {
      // Best-of-2 in the full run: on a small host the client threads, the
      // epoll loop, and the worker lanes all share the same cores, so a
      // single trial can eat a scheduler stall.  Keeping the faster trial
      // damps that interference without changing what is measured.
      const int trials = quick ? 1 : 2;
      SocketPoint pt = RunSocketPoint(&runtime, &files, mode, /*lanes=*/4, sock_clients,
                                      sock_per_client, reuse, /*duration_s=*/0);
      for (int t = 1; t < trials; ++t) {
        SocketPoint again = RunSocketPoint(&runtime, &files, mode, /*lanes=*/4,
                                           sock_clients, sock_per_client, reuse,
                                           /*duration_s=*/0);
        pt.mismatches += again.mismatches;
        if (again.rps > pt.rps) {
          again.mismatches = pt.mismatches;
          pt = std::move(again);
        }
      }
      failures += pt.mismatches;
      table.AddRow({vnet::ServeModeName(mode), std::to_string(pt.reuse),
                    vbase::Fmt(pt.rps, 0), vbase::Fmt(pt.mean_us, 1),
                    vbase::Fmt(pt.p99_us, 1), std::to_string(pt.lstats.accepted),
                    std::to_string(pt.counters.keepalive_reused)});
      points.push_back(std::move(pt));
    }
    table.Print();
    socket_sweeps.emplace_back(vnet::ServeModeName(mode), std::move(points));
  }

  // Keep-alive gate: in snapshot mode, reuse must beat connection-per-request
  // (quick: 8 > 1; full: 64 >= 2x 1).  Reuse amortizes the per-connection
  // connect + dispatch + shell acquire + snapshot restore over many requests.
  const std::vector<SocketPoint>& snap_points = socket_sweeps.back().second;
  const double reuse1_rps = snap_points.front().rps;
  const double reuse_top_rps = snap_points.back().rps;
  const double gate_ratio = reuse1_rps > 0 ? reuse_top_rps / reuse1_rps : 0;
  std::printf("\nClaim check: virtine+snapshot socket RPS at %d requests/connection is "
              "%.2fx connection-per-request (floor: %s).\n",
              reuse_sweep.back(), gate_ratio, quick ? "1x" : "2x");
  if (quick ? gate_ratio <= 1.0 : gate_ratio < 2.0) {
    std::printf("FAIL: keep-alive reuse ratio %.2fx below the floor\n", gate_ratio);
    ++failures;
  }

  if (!json_path.empty()) {
    WriteJson(json_path, socket_sweeps, gate_ratio);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (failures > 0) {
    std::printf("\nFAIL: %d bad responses / counter mismatches\n", failures);
    return 1;
  }
  std::printf("\nOK: all responses 200 with full bodies; admission counters consistent.\n");
  return 0;
}
