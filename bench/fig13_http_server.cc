// Figure 13: HTTP server latency (a) and harmonic-mean throughput (b) with
// each request handled natively vs in a virtine (with/without snapshots).
//
// Every virtine request performs the paper's seven host interactions.  The
// native baseline is the same handler logic with all virtualization charges
// stripped (DESIGN.md S2); throughput is the harmonic mean of per-request
// throughput, as in the paper.
#include <atomic>

#include "bench/bench_util.h"
#include "src/vnet/loadgen.h"
#include "src/vnet/server.h"
#include "src/wasp/channel.h"
#include "src/wasp/runtime.h"

int main() {
  benchutil::Header(
      "Figure 13: HTTP static-file server, native vs virtine handlers",
      "virtines with snapshotting lose only ~12% throughput vs native despite 7 "
      "hypercalls per request; most of the cost is hypercall ring transitions");

  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/static.html", std::string(8192, 'v'));
  vnet::StaticHttpServer server(&runtime, &files);

  constexpr int kWorkers = 4;
  constexpr int kRequestsPerWorker = 40;
  const char* request = "GET /static.html HTTP/1.0\r\n\r\n";

  struct ModeResult {
    vnet::ServeMode mode;
    vnet::LoadResult load;
    double mean_native_us = 0;  // de-isolated handler cost (baseline currency)
  };
  std::vector<ModeResult> results;
  for (vnet::ServeMode mode : {vnet::ServeMode::kNative, vnet::ServeMode::kVirtine,
                               vnet::ServeMode::kVirtineSnapshot}) {
    std::atomic<double> native_sum{0};
    std::atomic<uint64_t> native_count{0};
    auto fn = [&]() -> double {
      wasp::ByteChannel channel;
      channel.host().WriteString(request);
      auto stats = server.HandleConnection(channel, mode);
      if (!stats.ok() || stats->status != 200) {
        return -1;
      }
      auto response = channel.host().Drain();
      if (response.size() < 8192) {
        return -1;
      }
      if (mode == vnet::ServeMode::kNative) {
        // Wall time for the native handler; the figure's comparisons use the
        // modeled currency below.
        return static_cast<double>(stats->wall_ns) / 1e3;
      }
      double expected = native_sum.load();
      native_sum.store(expected + vbase::CyclesToMicros(stats->deisolated_cycles));
      native_count.fetch_add(1);
      return vbase::CyclesToMicros(stats->modeled_cycles);
    };
    ModeResult mr{mode, vnet::RunClosedLoop(kWorkers, kRequestsPerWorker, fn), 0};
    if (native_count.load() > 0) {
      mr.mean_native_us = native_sum.load() / static_cast<double>(native_count.load());
    }
    results.push_back(std::move(mr));
  }

  // The modeled native baseline comes from the de-isolated virtine+snapshot
  // handler cost (same logic, no VM charges).
  const double native_us = results[2].mean_native_us;
  const double native_rps = native_us > 0 ? 1e6 / native_us : 0;

  vbase::Table table(
      {"handler", "mean latency us", "p99 us", "throughput rps", "vs native"});
  table.AddRow({"native (modeled)", vbase::Fmt(native_us, 1), "-",
                vbase::Fmt(native_rps, 0), "1.00x"});
  for (size_t i = 1; i < results.size(); ++i) {
    const auto& r = results[i];
    table.AddRow({vnet::ServeModeName(r.mode), vbase::Fmt(r.load.latency.mean, 1),
                  vbase::Fmt(r.load.latency.p99, 1), vbase::Fmt(r.load.harmonic_mean_rps, 0),
                  vbase::Fmt(native_rps > 0 ? r.load.harmonic_mean_rps / native_rps : 0, 2) +
                      "x"});
  }
  table.Print();
  const double snap_drop =
      100.0 * (1.0 - results[2].load.harmonic_mean_rps / native_rps);
  std::printf("\nClaim check: virtine+snapshot throughput drop vs native = %.1f%% "
              "(paper: ~12%%); %d workers x %d requests; native wall mean %.1f us.\n",
              snap_drop, kWorkers, kRequestsPerWorker, results[0].load.latency.mean);
  return 0;
}
