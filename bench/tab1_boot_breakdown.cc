// Table 1: Boot time breakdown for the minimal runtime environment.
//
// The long-mode boot stub executes the classic bring-up sequence; the CPU
// logs a milestone at each component.  As in the paper we report the
// *minimum* observed latency per component over all trials.
#include <algorithm>
#include <map>

#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/vkvm/vkvm.h"
#include "src/wasp/abi.h"

int main() {
  benchutil::Header(
      "Table 1: boot-time breakdown (cycles per component, min over trials)",
      "paging identity mapping dominates (~28K cycles); protected transition ~3.2K; "
      "32-bit GDT load ~4.1K; jumps and first instruction are negligible");

  auto image = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(image.ok(), image.status().ToString());

  constexpr int kTrials = 1000;
  std::map<vhw::BootEvent, uint64_t> min_cost;
  for (int t = 0; t < kTrials; ++t) {
    auto vm = vkvm::Vm::Create(vkvm::VmConfig{});
    VB_CHECK(vm->LoadBlob(image->load_addr, image->bytes.data(), image->bytes.size()).ok(),
             "load failed");
    uint64_t boot_info[2] = {vm->memory().size(), 0};
    VB_CHECK(vm->memory().Write(wasp::kBootInfoAddr, boot_info, sizeof(boot_info)).ok(), "");
    uint64_t args[3] = {0, 1, 1};  // fib(1): minimal workload
    VB_CHECK(vm->memory().Write(wasp::kArgPageAddr, args, sizeof(args)).ok(), "");
    vm->ResetVcpu(image->entry);
    vm->cpu().set_reg(visa::kSp, wasp::kRealModeStackTop);
    auto run = vm->Run();
    VB_CHECK(run.reason == vkvm::ExitReason::kHlt, run.fault);
    const auto& ms = vm->cpu().milestones();
    std::map<vhw::BootEvent, uint64_t> at;
    for (const auto& m : ms) {
      at[m.event] = m.cycles;
    }
    for (size_t i = 0; i < ms.size(); ++i) {
      const uint64_t prev = i == 0 ? 0 : ms[i - 1].cycles;
      uint64_t cost = ms[i].cycles - prev;
      // "Paging identity mapping" spans the page-table store loop, control
      // register setup, and EPT construction: everything between the
      // long-transition lgdt and CR0.PG taking effect (the paper's "12KB of
      // memory references, plus the actual installation of the page tables,
      // control register configuration, and construction of an EPT").
      if (ms[i].event == vhw::BootEvent::kCr0PgSet &&
          at.count(vhw::BootEvent::kLgdtProt) != 0) {
        cost = ms[i].cycles - at[vhw::BootEvent::kLgdtProt];
      }
      auto it = min_cost.find(ms[i].event);
      if (it == min_cost.end() || cost < it->second) {
        min_cost[ms[i].event] = cost;
      }
    }
  }

  // Rows in the paper's order (Table 1), paper reference values attached.
  struct Row {
    vhw::BootEvent event;
    const char* label;
    uint64_t paper_cycles;
  };
  const Row rows[] = {
      {vhw::BootEvent::kCr0PgSet, "Paging identity mapping", 28109},
      {vhw::BootEvent::kCr0PeSet, "Protected transition", 3217},
      {vhw::BootEvent::kLgdtProt, "Long transition (lgdt)", 681},
      {vhw::BootEvent::kJump32, "Jump to 32-bit (ljmp)", 175},
      {vhw::BootEvent::kJump64, "Jump to 64-bit (ljmp)", 190},
      {vhw::BootEvent::kLgdtReal, "Load 32-bit GDT (lgdt)", 4118},
      {vhw::BootEvent::kFirstInsn, "First Instruction", 74},
  };
  vbase::Table table({"component", "measured (cycles)", "paper (cycles)"});
  uint64_t total = 0;
  for (const Row& row : rows) {
    const uint64_t measured = min_cost.count(row.event) ? min_cost[row.event] : 0;
    total += measured;
    table.AddRow({row.label, std::to_string(measured), std::to_string(row.paper_cycles)});
  }
  table.AddRow({"TOTAL (boot components)", std::to_string(total), "36564"});
  table.Print();
  std::printf("\n%d trials; identity map covers 1 GB with 512 x 2 MB PDEs written by the "
              "guest boot stub.\n",
              kTrials);
  return 0;
}
