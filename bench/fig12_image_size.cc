// Figure 12: impact of image size on start-up latency — cold loads and warm
// snapshot restores.
//
// Cold sweep: a minimal halting virtine is zero-padded from 16 KB to 16 MB;
// start-up latency grows linearly once image copying dominates, bounded by
// memcpy bandwidth (the paper measures 6.8 GB/s against tinker's 6.7 GB/s
// memcpy).
//
// Warm sweep (this reproduction's extension): the same padding applied to a
// snapshotting fib virtine, restored warm at a fixed working set.  The
// paper's "simple snapshotting strategy" re-copies the whole image per warm
// start (plus the pool re-zeroes it on release), so warm cost scales with
// image size.  The delta-aware engine parks the shell snapshot-affine and
// repairs only the pages the run dirtied: warm cost is bounded by the
// working set, independent of image size.
//
//   ./fig12_image_size             # full cold + warm sweeps
//   ./fig12_image_size --quick     # CI gate: affine warm restore must not
//                                  # scale with image size (16 MB vs 64 KB
//                                  # modeled warm cycles under 1.5x)
//   ./fig12_image_size --json out.json
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kFibArg = 10;
constexpr int64_t kFibExpected = 55;

struct WarmPoint {
  uint64_t image_size = 0;
  double full_cycles = 0;    // warm restore, affinity off (full image copy)
  double affine_cycles = 0;  // warm restore, snapshot-affine delta repair
  uint64_t full_restored_bytes = 0;
  uint64_t affine_restored_bytes = 0;
};

// Mean modeled warm-invocation cycles for one image size with the affinity
// knob on or off; also reports the restore copy volume of the last trial.
void MeasureWarm(const visa::Image& image, uint64_t mem_size, bool affinity, int trials,
                 double* mean_cycles, uint64_t* restored_bytes) {
  wasp::RuntimeOptions options;
  options.snapshot_affinity = affinity;
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.key = "fig12-warm";
  spec.use_snapshot = true;
  spec.word_bytes = 8;
  spec.mem_size = mem_size;
  wasp::ArgPacker packer(spec.word_bytes);
  packer.AddWord(static_cast<uint64_t>(kFibArg));
  spec.args_page = packer.Finish();

  auto cold = runtime.Invoke(spec);
  VB_CHECK(cold.status.ok(), cold.status.ToString());
  VB_CHECK(cold.stats.took_snapshot, "cold run failed to take the snapshot");

  std::vector<double> cycles;
  for (int t = 0; t < trials; ++t) {
    auto outcome = runtime.Invoke(spec);
    VB_CHECK(outcome.status.ok(), outcome.status.ToString());
    VB_CHECK(outcome.stats.restored_snapshot, "warm run missed the snapshot");
    VB_CHECK(static_cast<int64_t>(outcome.result_word) == kFibExpected,
             "wrong fib result from a warm restore");
    VB_CHECK(outcome.stats.affine_restore == affinity,
             "unexpected restore path (affinity knob ignored)");
    cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
    *restored_bytes = outcome.stats.restored_bytes;
  }
  *mean_cycles = vbase::Summarize(cycles).mean;
}

void WriteJson(const std::string& path, const std::vector<WarmPoint>& warm) {
  FILE* f = std::fopen(path.c_str(), "w");
  VB_CHECK(f != nullptr, "cannot open " << path);
  std::fprintf(f, "{\n  \"warm_restore_vs_image_size\": [\n");
  for (size_t i = 0; i < warm.size(); ++i) {
    const WarmPoint& p = warm[i];
    std::fprintf(f,
                 "    {\"image_bytes\": %llu, \"warm_full_cycles\": %.0f, "
                 "\"warm_affine_cycles\": %.0f, \"full_restored_bytes\": %llu, "
                 "\"affine_restored_bytes\": %llu}%s\n",
                 static_cast<unsigned long long>(p.image_size), p.full_cycles,
                 p.affine_cycles, static_cast<unsigned long long>(p.full_restored_bytes),
                 static_cast<unsigned long long>(p.affine_restored_bytes),
                 i + 1 < warm.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  benchutil::Header(
      "Figure 12: start-up latency vs image size (cold load + warm restore)",
      "cold latency becomes memory-bandwidth bound beyond ~1-2 MB; affine warm "
      "restores are bounded by the working set, independent of image size");

  // --- Cold sweep (the paper's figure) --------------------------------------
  if (!quick) {
    auto base = vrt::BuildRawImage(vrt::HaltSource());
    VB_CHECK(base.ok(), base.status().ToString());
    vbase::Table cold_table({"image size", "modeled us", "wall us (this host)",
                             "GB/s (modeled)"});
    for (uint64_t size : {16ULL << 10, 64ULL << 10, 256ULL << 10, 1ULL << 20, 4ULL << 20,
                          16ULL << 20}) {
      visa::Image image = *base;
      image.PadTo(size);
      wasp::Runtime runtime;
      wasp::VirtineSpec spec;
      spec.image = &image;
      spec.word_bytes = 0;
      spec.mem_size = size + (1ULL << 20);  // image at 0x8000 plus slack
      std::vector<double> cycles, wall;
      constexpr int kTrials = 10;
      for (int t = 0; t < kTrials; ++t) {
        auto outcome = runtime.Invoke(spec);
        VB_CHECK(outcome.status.ok(), outcome.status.ToString());
        cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
        wall.push_back(static_cast<double>(outcome.stats.total_ns) / 1e3);
      }
      const double mean_cycles = vbase::Summarize(cycles).mean;
      const double us = vbase::CyclesToMicros(static_cast<uint64_t>(mean_cycles));
      const double gbps = static_cast<double>(size) / (us * 1e-6) / 1e9;
      cold_table.AddRow({vbase::HumanBytes(size), vbase::Fmt(us, 1),
                         vbase::Fmt(vbase::Summarize(wall).mean, 1), vbase::Fmt(gbps, 2)});
    }
    cold_table.Print();
    std::printf("\nEvery cold trial loads the padded image into a pooled shell (memcpy); "
                "the modeled charge uses the calibrated 6.7 GB/s bandwidth.\n\n");
  }

  // --- Warm sweep: restore cost vs image size at fixed working set ----------
  auto fib_base = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(fib_base.ok(), fib_base.status().ToString());
  const int warm_trials = quick ? 3 : 8;
  std::vector<uint64_t> warm_sizes;
  if (quick) {
    warm_sizes = {64ULL << 10, 16ULL << 20};
  } else {
    warm_sizes = {64ULL << 10, 256ULL << 10, 1ULL << 20, 4ULL << 20, 16ULL << 20};
  }

  std::vector<WarmPoint> warm;
  for (const uint64_t size : warm_sizes) {
    visa::Image image = *fib_base;
    image.PadTo(size);
    WarmPoint point;
    point.image_size = size;
    const uint64_t mem_size = size + (1ULL << 20);
    MeasureWarm(image, mem_size, /*affinity=*/false, warm_trials, &point.full_cycles,
                &point.full_restored_bytes);
    MeasureWarm(image, mem_size, /*affinity=*/true, warm_trials, &point.affine_cycles,
                &point.affine_restored_bytes);
    warm.push_back(point);
  }

  vbase::Table warm_table({"image size", "warm full kcycles", "warm affine kcycles",
                           "full restore", "affine restore", "affine speedup"});
  for (const WarmPoint& point : warm) {
    warm_table.AddRow(
        {vbase::HumanBytes(point.image_size), vbase::Fmt(point.full_cycles / 1e3, 1),
         vbase::Fmt(point.affine_cycles / 1e3, 1),
         vbase::HumanBytes(point.full_restored_bytes),
         vbase::HumanBytes(point.affine_restored_bytes),
         vbase::Fmt(point.full_cycles / point.affine_cycles, 2)});
  }
  warm_table.Print();
  std::printf("\nWarm rows run fib(%d) (fixed working set) from a snapshot padded to the "
              "image size;\n\"full\" re-copies the whole snapshot per warm start "
              "(affinity disabled), \"affine\" repairs\nonly the delta on a "
              "snapshot-affine shell.\n",
              kFibArg);

  // CI gate: affine warm restore cost must not scale with image size.
  const WarmPoint& smallest = warm.front();
  const WarmPoint& largest = warm.back();
  const double ratio = largest.affine_cycles / smallest.affine_cycles;
  std::printf("\nClaim check: affine warm restore at %s vs %s image -> %.2fx "
              "(floor: < 1.5x) (%s)\n",
              vbase::HumanBytes(largest.image_size).c_str(),
              vbase::HumanBytes(smallest.image_size).c_str(), ratio,
              ratio < 1.5 ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    WriteJson(json_path, warm);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ratio < 1.5 ? 0 : 1;
}
