// Figure 12: impact of image size on start-up latency — cold loads and warm
// snapshot restores.
//
// Cold sweep: a minimal halting virtine is zero-padded from 16 KB to 16 MB;
// start-up latency grows linearly once image copying dominates, bounded by
// memcpy bandwidth (the paper measures 6.8 GB/s against tinker's 6.7 GB/s
// memcpy).
//
// Warm sweep (this reproduction's extension): the same padding applied to a
// snapshotting fib virtine, restored warm at a fixed working set.  The
// paper's "simple snapshotting strategy" re-copies the whole image per warm
// start (plus the pool re-zeroes it on release), so warm cost scales with
// image size.  The delta-aware engine parks the shell snapshot-affine and
// repairs only the pages the run dirtied: warm cost is bounded by the
// working set, independent of image size.
//
// Shell-count sweep (the COW-extent claim): park 1..64 snapshot-affine
// shells of one 16 MB-image generation and read the pool's resident-byte
// gauge.  Full-copy parking charges every shell its whole memory (resident
// grows linearly with the fleet); COW-backed shells map the generation's
// shared extent buffer and are charged only the pages they privatized, so
// resident stays O(image + working sets) — near-flat in the shell count.
//
//   ./fig12_image_size             # full cold + warm + shell-count sweeps
//   ./fig12_image_size --quick     # CI gates: affine warm restore must not
//                                  # scale with image size (16 MB vs 64 KB
//                                  # modeled warm cycles under 1.5x), and
//                                  # 64-shell COW resident bytes must stay
//                                  # under 2x the 1-shell baseline
//   ./fig12_image_size --json out.json
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr int kFibArg = 10;
constexpr int64_t kFibExpected = 55;

struct WarmPoint {
  uint64_t image_size = 0;
  double full_cycles = 0;    // warm restore, affinity off (full image copy)
  double affine_cycles = 0;  // warm restore, snapshot-affine delta repair
  uint64_t full_restored_bytes = 0;
  uint64_t affine_restored_bytes = 0;
};

// Mean modeled warm-invocation cycles for one image size with the affinity
// knob on or off; also reports the restore copy volume of the last trial.
void MeasureWarm(const visa::Image& image, uint64_t mem_size, bool affinity, int trials,
                 double* mean_cycles, uint64_t* restored_bytes) {
  wasp::RuntimeOptions options;
  options.snapshot_affinity = affinity;
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.key = "fig12-warm";
  spec.use_snapshot = true;
  spec.word_bytes = 8;
  spec.mem_size = mem_size;
  wasp::ArgPacker packer(spec.word_bytes);
  packer.AddWord(static_cast<uint64_t>(kFibArg));
  spec.args_page = packer.Finish();

  auto cold = runtime.Invoke(spec);
  VB_CHECK(cold.status.ok(), cold.status.ToString());
  VB_CHECK(cold.stats.took_snapshot, "cold run failed to take the snapshot");

  std::vector<double> cycles;
  for (int t = 0; t < trials; ++t) {
    auto outcome = runtime.Invoke(spec);
    VB_CHECK(outcome.status.ok(), outcome.status.ToString());
    VB_CHECK(outcome.stats.restored_snapshot, "warm run missed the snapshot");
    VB_CHECK(static_cast<int64_t>(outcome.result_word) == kFibExpected,
             "wrong fib result from a warm restore");
    VB_CHECK(outcome.stats.affine_restore == affinity,
             "unexpected restore path (affinity knob ignored)");
    cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
    *restored_bytes = outcome.stats.restored_bytes;
  }
  *mean_cycles = vbase::Summarize(cycles).mean;
}

// One shell-count sweep row: the pool's resident gauge with `shells` parked
// under one generation, COW-mapped vs full-copy parked.
struct ShellPoint {
  int shells = 0;
  uint64_t cow_resident = 0;  // gauge: shared chain once + private pages
  uint64_t cow_shared = 0;
  uint64_t cow_private = 0;
  uint64_t full_resident = 0;  // gauge: every shell charged its whole memory
};

// Pages each parked shell dirties after its restore — the per-shell warm
// working set the COW charge is proportional to.
constexpr int kParkedWorkingSetPages = 4;

// Parks `count` shells of `snap`'s generation and reads the residency gauge:
// COW-mapped when `cow`, full-copied (legacy charge) otherwise.  Shells are
// all acquired before any is parked so the plain-acquire path never reclaims
// an already-parked one.
void MeasureParkedResident(const wasp::SnapshotRef& snap, uint64_t mem_size, int count,
                           bool cow, ShellPoint* point) {
  wasp::Pool pool(wasp::CleanMode::kSync);
  vkvm::VmConfig cfg;
  cfg.mem_size = mem_size;
  std::vector<std::unique_ptr<vkvm::Vm>> shells;
  shells.reserve(count);
  for (int i = 0; i < count; ++i) {
    shells.push_back(pool.Acquire(cfg));
  }
  for (std::unique_ptr<vkvm::Vm>& vm : shells) {
    if (cow) {
      wasp::MapCowInto(*snap, &vm->memory());
    } else {
      wasp::RestoreFullInto(*snap, &vm->memory());
    }
    vm->memory().BeginEpoch();
    uint8_t b = 0x5c;
    for (int p = 0; p < kParkedWorkingSetPages; ++p) {
      const uint64_t gpa = mem_size - ((p + 1) << vhw::kPageBits);
      VB_CHECK(vm->memory().Write(gpa, &b, 1).ok(), "working-set write failed");
    }
    pool.ReleaseAffine(std::move(vm), snap->generation,
                       cow ? snap->chain_byte_size() : 0);
  }
  const wasp::AffineAccounting acct = pool.affine_accounting();
  uint64_t sum = 0;
  for (const auto& gen : acct.generations) {
    sum += gen.shared_bytes + gen.private_bytes;
  }
  VB_CHECK(sum == acct.resident_bytes, "residency gauge conservation violated");
  if (cow) {
    point->cow_resident = acct.resident_bytes;
    const wasp::PoolStats stats = pool.stats();
    point->cow_shared = stats.affine_shared_bytes;
    point->cow_private = stats.affine_private_bytes;
  } else {
    point->full_resident = acct.resident_bytes;
  }
}

void WriteJson(const std::string& path, const std::vector<WarmPoint>& warm,
               const std::vector<ShellPoint>& fleet) {
  FILE* f = std::fopen(path.c_str(), "w");
  VB_CHECK(f != nullptr, "cannot open " << path);
  std::fprintf(f, "{\n  \"warm_restore_vs_image_size\": [\n");
  for (size_t i = 0; i < warm.size(); ++i) {
    const WarmPoint& p = warm[i];
    std::fprintf(f,
                 "    {\"image_bytes\": %llu, \"warm_full_cycles\": %.0f, "
                 "\"warm_affine_cycles\": %.0f, \"full_restored_bytes\": %llu, "
                 "\"affine_restored_bytes\": %llu}%s\n",
                 static_cast<unsigned long long>(p.image_size), p.full_cycles,
                 p.affine_cycles, static_cast<unsigned long long>(p.full_restored_bytes),
                 static_cast<unsigned long long>(p.affine_restored_bytes),
                 i + 1 < warm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"warm_resident_vs_shell_count\": [\n");
  for (size_t i = 0; i < fleet.size(); ++i) {
    const ShellPoint& p = fleet[i];
    std::fprintf(f,
                 "    {\"shells\": %d, \"cow_resident_bytes\": %llu, "
                 "\"cow_shared_bytes\": %llu, \"cow_private_bytes\": %llu, "
                 "\"full_resident_bytes\": %llu}%s\n",
                 p.shells, static_cast<unsigned long long>(p.cow_resident),
                 static_cast<unsigned long long>(p.cow_shared),
                 static_cast<unsigned long long>(p.cow_private),
                 static_cast<unsigned long long>(p.full_resident),
                 i + 1 < fleet.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  benchutil::Header(
      "Figure 12: start-up latency vs image size (cold load + warm restore)",
      "cold latency becomes memory-bandwidth bound beyond ~1-2 MB; affine warm "
      "restores are bounded by the working set, independent of image size");

  // --- Cold sweep (the paper's figure) --------------------------------------
  if (!quick) {
    auto base = vrt::BuildRawImage(vrt::HaltSource());
    VB_CHECK(base.ok(), base.status().ToString());
    vbase::Table cold_table({"image size", "modeled us", "wall us (this host)",
                             "GB/s (modeled)"});
    for (uint64_t size : {16ULL << 10, 64ULL << 10, 256ULL << 10, 1ULL << 20, 4ULL << 20,
                          16ULL << 20}) {
      visa::Image image = *base;
      image.PadTo(size);
      wasp::Runtime runtime;
      wasp::VirtineSpec spec;
      spec.image = &image;
      spec.word_bytes = 0;
      spec.mem_size = size + (1ULL << 20);  // image at 0x8000 plus slack
      std::vector<double> cycles, wall;
      constexpr int kTrials = 10;
      for (int t = 0; t < kTrials; ++t) {
        auto outcome = runtime.Invoke(spec);
        VB_CHECK(outcome.status.ok(), outcome.status.ToString());
        cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
        wall.push_back(static_cast<double>(outcome.stats.total_ns) / 1e3);
      }
      const double mean_cycles = vbase::Summarize(cycles).mean;
      const double us = vbase::CyclesToMicros(static_cast<uint64_t>(mean_cycles));
      const double gbps = static_cast<double>(size) / (us * 1e-6) / 1e9;
      cold_table.AddRow({vbase::HumanBytes(size), vbase::Fmt(us, 1),
                         vbase::Fmt(vbase::Summarize(wall).mean, 1), vbase::Fmt(gbps, 2)});
    }
    cold_table.Print();
    std::printf("\nEvery cold trial loads the padded image into a pooled shell (memcpy); "
                "the modeled charge uses the calibrated 6.7 GB/s bandwidth.\n\n");
  }

  // --- Warm sweep: restore cost vs image size at fixed working set ----------
  auto fib_base = vrt::BuildImage(vrt::Env::kLong64, vrt::FibSource());
  VB_CHECK(fib_base.ok(), fib_base.status().ToString());
  const int warm_trials = quick ? 3 : 8;
  std::vector<uint64_t> warm_sizes;
  if (quick) {
    warm_sizes = {64ULL << 10, 16ULL << 20};
  } else {
    warm_sizes = {64ULL << 10, 256ULL << 10, 1ULL << 20, 4ULL << 20, 16ULL << 20};
  }

  std::vector<WarmPoint> warm;
  for (const uint64_t size : warm_sizes) {
    visa::Image image = *fib_base;
    image.PadTo(size);
    WarmPoint point;
    point.image_size = size;
    const uint64_t mem_size = size + (1ULL << 20);
    MeasureWarm(image, mem_size, /*affinity=*/false, warm_trials, &point.full_cycles,
                &point.full_restored_bytes);
    MeasureWarm(image, mem_size, /*affinity=*/true, warm_trials, &point.affine_cycles,
                &point.affine_restored_bytes);
    warm.push_back(point);
  }

  vbase::Table warm_table({"image size", "warm full kcycles", "warm affine kcycles",
                           "full restore", "affine restore", "affine speedup"});
  for (const WarmPoint& point : warm) {
    warm_table.AddRow(
        {vbase::HumanBytes(point.image_size), vbase::Fmt(point.full_cycles / 1e3, 1),
         vbase::Fmt(point.affine_cycles / 1e3, 1),
         vbase::HumanBytes(point.full_restored_bytes),
         vbase::HumanBytes(point.affine_restored_bytes),
         vbase::Fmt(point.full_cycles / point.affine_cycles, 2)});
  }
  warm_table.Print();
  std::printf("\nWarm rows run fib(%d) (fixed working set) from a snapshot padded to the "
              "image size;\n\"full\" re-copies the whole snapshot per warm start "
              "(affinity disabled), \"affine\" repairs\nonly the delta on a "
              "snapshot-affine shell.\n",
              kFibArg);

  // --- Shell-count sweep: resident bytes vs parked fleet size ---------------
  // One 16 MB-image generation, 1..64 shells parked warm.  COW parking keeps
  // the image resident once (shared) plus each shell's working set; full-copy
  // parking charges every shell its whole memory.
  constexpr uint64_t kFleetImageSize = 16ULL << 20;
  visa::Image fleet_image = *fib_base;
  fleet_image.PadTo(kFleetImageSize);
  const uint64_t fleet_mem_size = kFleetImageSize + (1ULL << 20);
  wasp::SnapshotRef fleet_snap;
  {
    wasp::Runtime runtime;
    wasp::VirtineSpec spec;
    spec.image = &fleet_image;
    spec.key = "fig12-fleet";
    spec.use_snapshot = true;
    spec.word_bytes = 8;
    spec.mem_size = fleet_mem_size;
    wasp::ArgPacker packer(spec.word_bytes);
    packer.AddWord(static_cast<uint64_t>(kFibArg));
    spec.args_page = packer.Finish();
    auto outcome = runtime.Invoke(spec);
    VB_CHECK(outcome.status.ok(), outcome.status.ToString());
    VB_CHECK(outcome.stats.took_snapshot, "fleet cold run failed to snapshot");
    fleet_snap = runtime.snapshots().Find(spec.key);
    VB_CHECK(fleet_snap != nullptr, "fleet snapshot missing from the store");
  }

  std::vector<int> shell_counts;
  if (quick) {
    shell_counts = {1, 64};
  } else {
    shell_counts = {1, 2, 4, 8, 16, 32, 64};
  }
  std::vector<ShellPoint> fleet;
  for (const int count : shell_counts) {
    ShellPoint point;
    point.shells = count;
    MeasureParkedResident(fleet_snap, fleet_mem_size, count, /*cow=*/true, &point);
    MeasureParkedResident(fleet_snap, fleet_mem_size, count, /*cow=*/false, &point);
    fleet.push_back(point);
  }

  vbase::Table fleet_table({"parked shells", "cow resident", "cow shared", "cow private",
                            "full-copy resident", "full/cow"});
  for (const ShellPoint& point : fleet) {
    fleet_table.AddRow(
        {std::to_string(point.shells), vbase::HumanBytes(point.cow_resident),
         vbase::HumanBytes(point.cow_shared), vbase::HumanBytes(point.cow_private),
         vbase::HumanBytes(point.full_resident),
         vbase::Fmt(static_cast<double>(point.full_resident) /
                        static_cast<double>(point.cow_resident),
                    2)});
  }
  std::printf("\n");
  fleet_table.Print();
  std::printf("\nEach parked shell dirtied %d pages after restore (its warm working set); "
              "the COW\nrows charge the 16 MB extent chain once per generation plus "
              "private pages per shell,\nthe full-copy rows charge every shell its whole "
              "memory.\n",
              kParkedWorkingSetPages);

  // CI gate 1: affine warm restore cost must not scale with image size.
  const WarmPoint& smallest = warm.front();
  const WarmPoint& largest = warm.back();
  const double ratio = largest.affine_cycles / smallest.affine_cycles;
  std::printf("\nClaim check: affine warm restore at %s vs %s image -> %.2fx "
              "(floor: < 1.5x) (%s)\n",
              vbase::HumanBytes(largest.image_size).c_str(),
              vbase::HumanBytes(smallest.image_size).c_str(), ratio,
              ratio < 1.5 ? "PASS" : "FAIL");

  // CI gate 2: COW resident bytes must stay near-flat in the shell count.
  const ShellPoint& one = fleet.front();
  const ShellPoint& many = fleet.back();
  const double fleet_ratio = static_cast<double>(many.cow_resident) /
                             static_cast<double>(one.cow_resident);
  std::printf("Claim check: COW resident bytes at %d vs %d parked shells -> %.2fx "
              "(floor: < 2x) (%s)\n",
              many.shells, one.shells, fleet_ratio,
              fleet_ratio < 2.0 ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    WriteJson(json_path, warm, fleet);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (ratio < 1.5 && fleet_ratio < 2.0) ? 0 : 1;
}
