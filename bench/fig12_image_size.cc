// Figure 12: impact of image size on start-up latency.
//
// A minimal halting virtine is zero-padded from 16 KB to 16 MB; start-up
// latency grows linearly once image copying dominates, bounded by memcpy
// bandwidth (the paper measures 6.8 GB/s against tinker's 6.7 GB/s memcpy).
#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/runtime.h"

int main() {
  benchutil::Header(
      "Figure 12: start-up latency vs image size (zero-padded halt image)",
      "latency becomes memory-bandwidth bound beyond ~1-2 MB; 16 MB costs ~2.3 ms at "
      "~6.8 GB/s");

  auto base = vrt::BuildRawImage(vrt::HaltSource());
  VB_CHECK(base.ok(), base.status().ToString());

  vbase::Table table({"image size", "modeled us", "wall us (this host)", "GB/s (modeled)"});
  for (uint64_t size : {16ULL << 10, 64ULL << 10, 256ULL << 10, 1ULL << 20, 4ULL << 20,
                        16ULL << 20}) {
    visa::Image image = *base;
    image.PadTo(size);
    wasp::Runtime runtime;
    wasp::VirtineSpec spec;
    spec.image = &image;
    spec.word_bytes = 0;
    spec.mem_size = size + (1ULL << 20);  // image at 0x8000 plus slack
    std::vector<double> cycles, wall;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      auto outcome = runtime.Invoke(spec);
      VB_CHECK(outcome.status.ok(), outcome.status.ToString());
      cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
      wall.push_back(static_cast<double>(outcome.stats.total_ns) / 1e3);
    }
    const double mean_cycles = vbase::Summarize(cycles).mean;
    const double us = vbase::CyclesToMicros(static_cast<uint64_t>(mean_cycles));
    const double gbps = static_cast<double>(size) / (us * 1e-6) / 1e9;
    table.AddRow({vbase::HumanBytes(size), vbase::Fmt(us, 1),
                  vbase::Fmt(vbase::Summarize(wall).mean, 1), vbase::Fmt(gbps, 2)});
  }
  table.Print();
  std::printf("\nEvery trial loads the padded image into a pooled shell (memcpy); the "
              "modeled charge uses the calibrated 6.7 GB/s bandwidth.\n");
  return 0;
}
