// Figure 2: lower bounds on execution-context creation.
//
// Rows: null function call, bare vmrun (KVM_RUN of an existing context),
// pthread create+join, fresh KVM VM create+enter+hlt, and process fork/wait
// for scale.  Modeled cycles are deterministic; wall times measure the real
// host work this reproduction performs (allocation, zeroing, dispatch).
#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/vkvm/vkvm.h"

namespace {

volatile int g_sink = 0;
void NullFunction() { g_sink = g_sink + 1; }

}  // namespace

int main() {
  benchutil::Header(
      "Figure 2: lower bounds on execution context creation",
      "function << vmrun << pthread << KVM VM creation << process; creating a bare "
      "virtual context is cheap relative to processes");

  constexpr int kTrials = 200;
  auto image = vrt::BuildRawImage(vrt::HaltSource());
  VB_CHECK(image.ok(), image.status().ToString());
  vkvm::VmConfig cfg;
  const vkvm::HostCostModel host = cfg.host_costs;

  // --- function call -------------------------------------------------------
  vbase::WallTimer t_fn;
  for (int i = 0; i < 1000000; ++i) {
    NullFunction();
  }
  const double fn_wall_ns = static_cast<double>(t_fn.ElapsedNanos()) / 1e6;

  // --- bare vmrun: re-enter an existing VM context and hlt -----------------
  auto vm = vkvm::Vm::Create(cfg);
  VB_CHECK(vm->LoadBlob(image->load_addr, image->bytes.data(), image->bytes.size()).ok(), "");
  uint64_t vmrun_cycles = 0;
  std::vector<double> vmrun_wall;
  for (int i = 0; i < kTrials; ++i) {
    vm->ResetVcpu(image->entry);
    vm->ResetAccounting();
    vbase::WallTimer t;
    auto run = vm->Run();
    vmrun_wall.push_back(static_cast<double>(t.ElapsedNanos()));
    VB_CHECK(run.reason == vkvm::ExitReason::kHlt, run.fault);
    vmrun_cycles = vm->total_cycles();
  }

  // --- pthread create + join ------------------------------------------------
  std::vector<double> thread_wall;
  for (int i = 0; i < kTrials; ++i) {
    vbase::WallTimer t;
    std::thread th([] {});
    th.join();
    thread_wall.push_back(static_cast<double>(t.ElapsedNanos()));
  }

  // --- fresh KVM VM: create + enter + hlt -----------------------------------
  uint64_t kvm_cycles = 0;
  std::vector<double> kvm_wall;
  for (int i = 0; i < kTrials; ++i) {
    vbase::WallTimer t;
    auto fresh = vkvm::Vm::Create(cfg);
    VB_CHECK(fresh->LoadBlob(image->load_addr, image->bytes.data(), image->bytes.size()).ok(),
             "");
    fresh->ResetVcpu(image->entry);
    auto run = fresh->Run();
    kvm_wall.push_back(static_cast<double>(t.ElapsedNanos()));
    VB_CHECK(run.reason == vkvm::ExitReason::kHlt, run.fault);
    kvm_cycles = fresh->total_cycles();
  }

  // --- process fork + waitpid ------------------------------------------------
  std::vector<double> fork_wall;
  for (int i = 0; i < 32; ++i) {
    vbase::WallTimer t;
    const pid_t pid = fork();
    if (pid == 0) {
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    fork_wall.push_back(static_cast<double>(t.ElapsedNanos()));
  }

  auto mean = [](const std::vector<double>& v) { return vbase::Summarize(v).mean; };
  vbase::Table table({"context", "modeled cycles", "modeled us", "wall ns (this host)"});
  table.AddRow({"function call", "5", "0.0", vbase::Fmt(fn_wall_ns, 1)});
  table.AddRow({"vmrun (KVM_RUN, existing ctx)", std::to_string(vmrun_cycles),
                benchutil::Us(static_cast<double>(vmrun_cycles)), vbase::Fmt(mean(vmrun_wall), 0)});
  table.AddRow({"pthread create+join", std::to_string(host.pthread_create),
                benchutil::Us(static_cast<double>(host.pthread_create)),
                vbase::Fmt(mean(thread_wall), 0)});
  table.AddRow({"KVM VM create+enter+hlt", std::to_string(kvm_cycles),
                benchutil::Us(static_cast<double>(kvm_cycles)), vbase::Fmt(mean(kvm_wall), 0)});
  table.AddRow({"process fork+waitpid", std::to_string(host.process_fork),
                benchutil::Us(static_cast<double>(host.process_fork)),
                vbase::Fmt(mean(fork_wall), 0)});
  table.Print();
  std::printf("\nKVM hardware on this host: %s (software machine substitutes; DESIGN.md S2)\n",
              vkvm::KvmHardwareAvailable() ? "available" : "absent");
  return 0;
}
