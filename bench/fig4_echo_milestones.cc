// Figure 4: latency for echo-server startup milestones in protected mode.
//
// The echo guest runs in the prot32 environment (no paging, as in the
// paper), timestamps main-entry / after-recv / after-send with in-guest
// rdtsc, and ships the milestones back through return_data.
#include <cstring>

#include "bench/bench_util.h"
#include "src/vcc/vcc.h"
#include "src/vnet/server.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/channel.h"
#include "src/wasp/runtime.h"

int main() {
  benchutil::Header(
      "Figure 4: echo-server startup milestones (protected mode, no paging)",
      "server reaches C code in ~10K cycles; a full HTTP echo round trip completes in "
      "100-500K cycles (<300us) including hypercall-based I/O");

  auto image = vcc::CompileProgram(vrt::VlibcSource() + vnet::EchoHandlerSource(), "main",
                                   vrt::Env::kProt32);
  VB_CHECK(image.ok(), image.status().ToString());

  constexpr int kTrials = 200;
  const std::string request = "GET /echo HTTP/1.1\r\nHost: tinker\r\n\r\n";
  std::vector<double> entry_c, recv_c, send_c;
  wasp::Runtime runtime;
  for (int t = 0; t < kTrials; ++t) {
    wasp::ByteChannel channel;
    channel.host().WriteString(request);
    wasp::VirtineSpec spec;
    spec.image = &image.value();
    spec.word_bytes = 4;
    spec.policy = wasp::kPolicyStream | wasp::MaskOf(wasp::kHcReturnData);
    spec.channel = &channel.guest();
    auto outcome = runtime.Invoke(spec);
    VB_CHECK(outcome.status.ok(), outcome.status.ToString());
    VB_CHECK(outcome.output.size() == 12, "missing milestones: " << outcome.output.size());
    uint32_t mb[3];
    std::memcpy(mb, outcome.output.data(), sizeof(mb));
    entry_c.push_back(mb[0]);
    recv_c.push_back(mb[1]);
    send_c.push_back(mb[2]);
    auto echoed = channel.host().Drain();
    VB_CHECK(std::string(echoed.begin(), echoed.end()) == request, "echo mismatch");
  }

  vbase::Table table({"milestone", "mean cycles", "stddev", "mean us"});
  for (const auto& [label, samples] :
       {std::pair<const char*, std::vector<double>*>{"main entry (reached C code)", &entry_c},
        {"request received (recv())", &recv_c},
        {"response sent (send())", &send_c}}) {
    const vbase::Summary s = vbase::Summarize(vbase::TukeyFilter(*samples));
    table.AddRow({label, benchutil::Cycles(s.mean), benchutil::Cycles(s.stddev),
                  benchutil::Us(s.mean)});
  }
  table.Print();
  std::printf("\n%d trials; milestones measured inside the virtual context with rdtsc.\n",
              kTrials);
  const vbase::Summary total = vbase::Summarize(vbase::TukeyFilter(send_c));
  std::printf("end-to-end echo (guest view): %.1f us  => sub-millisecond response: %s\n",
              vbase::CyclesToMicros(static_cast<uint64_t>(total.mean)),
              total.mean < 2.69e6 ? "YES" : "NO");
  return 0;
}
