// Figure 8: creation latencies for execution contexts, including Wasp's
// pooling optimizations.
//
// Rows: fn call / vmrun / Wasp+CA (pooled, asynchronous cleaning) /
// Wasp+C (pooled, synchronous cleaning) / pthread / Wasp (fresh create per
// virtine) / raw KVM create / process, plus SGX reference rows (modeled
// from the paper's Comet Lake measurements; no SGX hardware here).
#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/runtime.h"

namespace {

// One virtine invocation of the minimal halting image through a runtime
// configured with the given pool mode; returns mean modeled cycles.
double MeasureWasp(wasp::CleanMode mode, const visa::Image& image, int trials,
                   double* wall_ns) {
  wasp::RuntimeOptions options;
  options.clean_mode = mode;
  wasp::Runtime runtime(options);
  wasp::VirtineSpec spec;
  spec.image = &image;
  spec.word_bytes = 0;  // raw image: no argument page contract
  if (mode == wasp::CleanMode::kAsync) {
    runtime.pool().Prewarm(runtime.MakeVmConfig(spec.mem_size), 8);
  }
  std::vector<double> cycles;
  std::vector<double> wall;
  for (int i = 0; i < trials; ++i) {
    auto outcome = runtime.Invoke(spec);
    VB_CHECK(outcome.status.ok(), outcome.status.ToString());
    // Skip the cold first run for the pooled variants.
    if (i > 0 || mode == wasp::CleanMode::kNone) {
      cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
      wall.push_back(static_cast<double>(outcome.stats.total_ns));
    }
    if (mode == wasp::CleanMode::kAsync && i % 4 == 3) {
      runtime.pool().DrainCleaner();  // keep the warm pool stocked
    }
  }
  *wall_ns = vbase::Summarize(wall).mean;
  return vbase::Summarize(vbase::TukeyFilter(cycles)).mean;
}

}  // namespace

int main() {
  benchutil::Header(
      "Figure 8: creation latencies with Wasp optimizations (log-scale in the paper)",
      "pooled shells (Wasp+C) beat pthread creation; asynchronous cleaning (Wasp+CA) "
      "comes within ~4% of a bare vmrun; fresh Wasp virtines beat processes by >10x");

  auto image = vrt::BuildRawImage(vrt::HaltSource());
  VB_CHECK(image.ok(), image.status().ToString());
  constexpr int kTrials = 100;
  vkvm::VmConfig cfg;
  const vkvm::HostCostModel host = cfg.host_costs;

  // vmrun floor: re-run an existing context.
  auto vm = vkvm::Vm::Create(cfg);
  VB_CHECK(vm->LoadBlob(image->load_addr, image->bytes.data(), image->bytes.size()).ok(), "");
  vm->ResetVcpu(image->entry);
  vm->ResetAccounting();
  VB_CHECK(vm->Run().reason == vkvm::ExitReason::kHlt, "vmrun floor failed");
  const double vmrun_cycles = static_cast<double>(vm->total_cycles());

  double wall_fresh = 0, wall_sync = 0, wall_async = 0;
  const double wasp_fresh = MeasureWasp(wasp::CleanMode::kNone, *image, kTrials, &wall_fresh);
  const double wasp_c = MeasureWasp(wasp::CleanMode::kSync, *image, kTrials, &wall_sync);
  const double wasp_ca = MeasureWasp(wasp::CleanMode::kAsync, *image, kTrials, &wall_async);

  std::vector<double> thread_wall;
  for (int i = 0; i < kTrials; ++i) {
    vbase::WallTimer t;
    std::thread th([] {});
    th.join();
    thread_wall.push_back(static_cast<double>(t.ElapsedNanos()));
  }
  std::vector<double> fork_wall;
  for (int i = 0; i < 16; ++i) {
    vbase::WallTimer t;
    const pid_t pid = fork();
    if (pid == 0) {
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    fork_wall.push_back(static_cast<double>(t.ElapsedNanos()));
  }

  struct Row {
    const char* label;
    double cycles;
    std::string note;
  };
  const Row rows[] = {
      {"function call", 5, "floor"},
      {"vmrun (existing context)", vmrun_cycles, "hardware limit"},
      {"Wasp+CA (pooled, async clean)", wasp_ca,
       vbase::Fmt(100.0 * (wasp_ca - vmrun_cycles) / vmrun_cycles, 1) + "% over vmrun"},
      {"Wasp+C (pooled, sync clean)", wasp_c, "includes shell cleaning"},
      {"pthread create+join", static_cast<double>(host.pthread_create),
       "wall " + vbase::Fmt(vbase::Summarize(thread_wall).mean, 0) + " ns"},
      {"Wasp (fresh virtine)", wasp_fresh, "full VM create + image load"},
      {"KVM VM create", static_cast<double>(host.vm_create), "kernel context alloc"},
      {"process fork+waitpid", static_cast<double>(host.process_fork),
       "wall " + vbase::Fmt(vbase::Summarize(fork_wall).mean, 0) + " ns"},
      {"SGX ECALL (paper, Comet Lake)", static_cast<double>(host.sgx_ecall), "modeled"},
      {"SGX enclave create (paper)", static_cast<double>(host.sgx_create), "modeled"},
  };
  vbase::Table table({"context", "modeled cycles", "modeled us", "note"});
  for (const Row& row : rows) {
    table.AddRow({row.label, benchutil::Cycles(row.cycles), benchutil::Us(row.cycles),
                  row.note});
  }
  table.Print();
  std::printf("\nwall (this host): Wasp fresh %.0f ns | Wasp+C %.0f ns | Wasp+CA %.0f ns\n",
              wall_fresh, wall_sync, wall_async);
  std::printf("Claim check: Wasp+CA within 4%% of vmrun -> measured %+.1f%%\n",
              100.0 * (wasp_ca - vmrun_cycles) / vmrun_cycles);
  return 0;
}
