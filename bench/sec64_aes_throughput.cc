// Section 6.4: AES-128-CBC in a virtine (the OpenSSL `speed` experiment).
//
// For each block size, one virtine invocation encrypts the buffer
// (get_data -> CBC -> return_data) with snapshotting enabled.  Isolation
// overhead = everything the virtine adds on top of the cipher itself
// (shell provisioning, snapshot restore of the ~20 KB image, argument
// marshalling, 3 hypercall round trips).  The paper's 17x slowdown at 16 KB
// compares that overhead against a hardware-accelerated native cipher; we
// report both our measured plain-C++ native wall time and the slowdown
// computed against an AES-NI-class baseline (16 GB/s), which is the
// apples-to-apples counterpart of the paper's number.
#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/vaes/aes.h"
#include "src/vcc/vcc.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"

int main() {
  benchutil::Header(
      "Section 6.4: OpenSSL-style AES-128-CBC block cipher in a virtine",
      "virtine AES is memory-bound on the snapshot copy (~16us per invocation for a "
      "~21KB image); with a 16KB block the paper sees ~17x vs native OpenSSL");

  auto image = vcc::CompileProgram(vrt::VlibcSource() + vaes::GuestAesSource(), "main",
                                   vrt::Env::kLong64);
  VB_CHECK(image.ok(), image.status().ToString());
  std::printf("virtine AES image: %s (paper: ~21 KB)\n\n",
              vbase::HumanBytes(image->bytes.size()).c_str());

  const vaes::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const vaes::Block iv = {};
  vbase::Rng rng(3);

  wasp::Runtime runtime;
  vbase::Table table({"block", "overhead us", "native C++ us", "slowdown (ours)",
                      "slowdown vs AES-NI-class"});
  for (uint64_t size : {16ULL, 256ULL, 1024ULL, 4096ULL, 16384ULL}) {
    std::vector<uint8_t> plaintext(size);
    for (auto& b : plaintext) {
      b = static_cast<uint8_t>(rng.Next());
    }
    std::vector<uint8_t> input;
    input.insert(input.end(), key.begin(), key.end());
    input.insert(input.end(), iv.begin(), iv.end());
    input.insert(input.end(), plaintext.begin(), plaintext.end());

    wasp::VirtineSpec spec;
    spec.image = &image.value();
    spec.key = "aes-speed";
    spec.policy = wasp::kPolicyManaged;
    spec.use_snapshot = true;
    spec.input = &input;

    double overhead_us = 0;
    bool verified = false;
    for (int t = 0; t < 4; ++t) {
      auto outcome = runtime.Invoke(spec);
      VB_CHECK(outcome.status.ok(), outcome.status.ToString());
      if (!verified) {
        VB_CHECK(outcome.output == vaes::EncryptCbc(key, iv, plaintext),
                 "guest ciphertext != host ciphertext");
        verified = true;
      }
      if (!outcome.stats.restored_snapshot) {
        continue;  // the cold run pays snapshot capture; skip it
      }
      // Everything except the interpreted cipher itself.
      const auto& costs = runtime.options().vm_defaults.guest_costs;
      const uint64_t exits =
          outcome.stats.io_exits * (costs.io_exit + costs.io_entry) + costs.hlt_exit;
      const uint64_t cipher =
          outcome.stats.guest_cycles > exits ? outcome.stats.guest_cycles - exits : 0;
      overhead_us = vbase::CyclesToMicros(outcome.stats.total_cycles - cipher);
    }

    // Native C++ AES on this host (no AES-NI): wall time.
    vbase::WallTimer timer;
    constexpr int kNativeReps = 50;
    for (int i = 0; i < kNativeReps; ++i) {
      auto ct = vaes::EncryptCbc(key, iv, plaintext);
      VB_CHECK(!ct.empty(), "");
    }
    const double native_us = timer.ElapsedMicros() / kNativeReps;
    // AES-NI-class baseline: 16 GB/s.
    const double aesni_us = static_cast<double>(size) / 16e3;
    table.AddRow({vbase::HumanBytes(size), vbase::Fmt(overhead_us, 1),
                  vbase::Fmt(native_us, 1),
                  vbase::Fmt((native_us + overhead_us) / native_us, 1) + "x",
                  vbase::Fmt((aesni_us + overhead_us) / aesni_us, 1) + "x"});
  }
  table.Print();
  std::printf("\noverhead = shell + snapshot restore + marshalling + 3 hypercalls; the\n"
              "AES-NI-class column is the paper's comparison point (hot, hardware cipher).\n");
  return 0;
}
