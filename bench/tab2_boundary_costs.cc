// Table 2: comparing costs of crossing isolation boundaries.
//
// Rows for Wedge/LwC/Enclosures/SeCage/Hodor are the paper's reported
// values (different mechanisms, shown for perspective).  The virtine row is
// *measured* here: the cost of entering and leaving a pooled, snapshotted
// virtine context (userspace -> KVM_RUN -> guest -> exit), which the paper
// reports as ~5 us.
#include "bench/bench_util.h"
#include "src/vrt/env.h"
#include "src/vrt/samples.h"
#include "src/wasp/runtime.h"

int main() {
  benchutil::Header(
      "Table 2: isolation boundary-crossing costs across systems",
      "virtines cross the boundary in ~5us via the syscall interface + VMRUN; "
      "VMFUNC-based systems are cheaper, process-like systems are comparable");

  // Measure the minimal virtine boundary: pooled shell + snapshot restore of
  // an (empty) post-boot state, run to hlt.
  auto image = vrt::BuildRawImage(vrt::HaltSource());
  VB_CHECK(image.ok(), image.status().ToString());
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.word_bytes = 0;
  std::vector<double> cycles;
  for (int i = 0; i < 100; ++i) {
    auto outcome = runtime.Invoke(spec);
    VB_CHECK(outcome.status.ok(), outcome.status.ToString());
    if (i > 0) {
      cycles.push_back(static_cast<double>(outcome.stats.total_cycles));
    }
  }
  const double virtine_us =
      vbase::CyclesToMicros(static_cast<uint64_t>(vbase::Summarize(cycles).mean));

  vbase::Table table({"system", "latency", "boundary-cross mechanism"});
  table.AddRow({"Wedge (paper)", "~60 us", "sthread call"});
  table.AddRow({"LwC (paper)", "2.01 us", "lwSwitch"});
  table.AddRow({"Enclosures (paper)", "0.9 us", "custom syscall interface"});
  table.AddRow({"SeCage (paper)", "0.5 us", "VMRUN/VMFUNC"});
  table.AddRow({"Hodor (paper)", "0.1 us", "VMRUN/VMFUNC"});
  table.AddRow({"Virtines (measured here)", vbase::Fmt(virtine_us, 2) + " us",
                "syscall interface + VMRUN (pooled shell)"});
  table.Print();
  std::printf("\npaper virtine row: ~5 us measured from userspace around KVM_RUN.\n");
  return 0;
}
