// Figure 11: latency of virtines as computational intensity increases.
//
// fib(n) for growing n, comparing native execution, virtines without
// snapshotting, and virtines with snapshotting (language-extension flow).
// "Native" is the same generated code with every virtualization charge
// stripped (no VM creation/boot, no exit costs), the same-currency
// equivalent of the paper's native function call.
#include "bench/bench_util.h"
#include "src/vcc/vcc.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

namespace {

constexpr char kFibSource[] = R"(
  virtine int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  })";

struct Sample {
  double total_cycles;
  double native_cycles;
};

Sample RunOnce(wasp::Runtime* runtime, const vcc::CompiledVirtine& cv, bool snapshot, int n) {
  wasp::VirtineSpec spec;
  spec.image = &cv.image;
  spec.key = snapshot ? "fib-snap" : "";
  spec.use_snapshot = snapshot;
  wasp::VirtineFunc<int64_t(int64_t)> fib(runtime, spec);
  auto result = fib.Call(n);
  VB_CHECK(result.ok(), result.status().ToString());
  const auto& stats = fib.last_outcome().stats;
  const auto& costs = runtime->options().vm_defaults.guest_costs;
  const uint64_t exit_charges =
      stats.io_exits * (costs.io_exit + costs.io_entry) + costs.hlt_exit;
  Sample s;
  s.total_cycles = static_cast<double>(stats.total_cycles);
  // Native equivalent: guest work only, minus exit/boot charges.  For the
  // snapshot runs the boot was skipped, so guest cycles are already just
  // CRT + fib; for non-snapshot runs this subtraction is approximate and we
  // only use the snapshot-run-derived value.
  s.native_cycles = static_cast<double>(
      stats.guest_cycles > exit_charges ? stats.guest_cycles - exit_charges : 0);
  return s;
}

}  // namespace

int main() {
  benchutil::Header(
      "Figure 11: virtine latency vs computational intensity (fib)",
      "snapshotting is ~2.5x faster at fib(0); slowdown vs native falls from 6.6x to "
      "~1.0x as work grows; overheads amortize with ~100us of work");

  auto virtines = vcc::CompileVirtines(kFibSource);
  VB_CHECK(virtines.ok(), virtines.status().ToString());
  const vcc::CompiledVirtine& cv = (*virtines)[0];

  vbase::Table table({"n", "native us", "virtine us", "virtine+snap us", "slowdown",
                      "slowdown+snap"});
  double crossover_n = -1;
  for (int n : {0, 5, 10, 15, 20, 25, 30}) {
    const int trials = n >= 25 ? 2 : 10;
    std::vector<double> native, plain, snap;
    wasp::Runtime runtime;  // fresh runtime per n: first snap run pays snapshot
    for (int t = 0; t < trials; ++t) {
      plain.push_back(RunOnce(&runtime, cv, false, n).total_cycles);
      const Sample s = RunOnce(&runtime, cv, true, n);
      snap.push_back(s.total_cycles);
      if (t > 0 || trials == 1) {
        native.push_back(s.native_cycles);  // steady-state restore runs only
      }
    }
    const double native_us = vbase::CyclesToMicros(
        static_cast<uint64_t>(vbase::Summarize(native).mean));
    const double plain_us =
        vbase::CyclesToMicros(static_cast<uint64_t>(vbase::Summarize(plain).mean));
    const double snap_us =
        vbase::CyclesToMicros(static_cast<uint64_t>(vbase::Summarize(snap).mean));
    table.AddRow({std::to_string(n), vbase::Fmt(native_us, 1), vbase::Fmt(plain_us, 1),
                  vbase::Fmt(snap_us, 1), vbase::Fmt(plain_us / native_us, 2) + "x",
                  vbase::Fmt(snap_us / native_us, 2) + "x"});
    if (crossover_n < 0 && snap_us / native_us < 1.10) {
      crossover_n = n;
    }
  }
  table.Print();
  std::printf("\nslowdown < 1.10x first reached at fib(%d) (the amortization point; the "
              "paper reaches it with ~100us of work)\n",
              static_cast<int>(crossover_n));
  return 0;
}
