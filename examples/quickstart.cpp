// Quickstart: isolate a C function in a virtine.
//
// This is the paper's Figure 9 flow end to end: a `virtine`-annotated C
// function is compiled by vcc into a bootable ~KB image, and each call runs
// in its own hardware-style virtual machine context through the embeddable
// Wasp hypervisor — pooled, snapshotted, and default-deny isolated.
#include <cstdio>

#include "src/base/clock.h"
#include "src/vcc/vcc.h"
#include "src/wasp/runtime.h"
#include "src/wasp/vfunc.h"

int main() {
  // 1. A C function annotated with the `virtine` keyword (Figure 9).
  const char* source = R"(
    virtine int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    })";

  auto virtines = vcc::CompileVirtines(source);
  if (!virtines.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", virtines.status().ToString().c_str());
    return 1;
  }
  const vcc::CompiledVirtine& fib_virtine = (*virtines)[0];
  std::printf("compiled virtine '%s': image %zu bytes, policy %#llx, %d arg(s)\n",
              fib_virtine.name.c_str(), fib_virtine.image.bytes.size(),
              static_cast<unsigned long long>(fib_virtine.policy), fib_virtine.num_args);

  // 2. Embed the Wasp hypervisor and wrap the image in a typed function.
  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &fib_virtine.image;
  spec.key = fib_virtine.name;
  spec.policy = fib_virtine.policy;
  spec.use_snapshot = true;  // language-extension default
  wasp::VirtineFunc<int64_t(int64_t)> fib(&runtime, spec);

  // 3. Call it like a function: every call is its own isolated VM.
  for (int n : {10, 20, 25}) {
    auto result = fib.Call(n);
    if (!result.ok()) {
      std::fprintf(stderr, "virtine failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& stats = fib.last_outcome().stats;
    std::printf(
        "fib(%2d) = %8lld | %s%s | modeled %9llu cycles (%8.1f us) | wall %7.1f us\n", n,
        static_cast<long long>(*result), stats.from_pool ? "pooled" : "fresh ",
        stats.restored_snapshot ? "+snapshot" : "         ",
        static_cast<unsigned long long>(stats.total_cycles),
        vbase::CyclesToMicros(stats.total_cycles), static_cast<double>(stats.total_ns) / 1e3);
  }

  const auto pool_stats = runtime.pool().stats();
  std::printf("pool: %llu acquires, %llu hits, %llu fresh creates\n",
              static_cast<unsigned long long>(pool_stats.acquires),
              static_cast<unsigned long long>(pool_stats.pool_hits),
              static_cast<unsigned long long>(pool_stats.fresh_creates));
  return 0;
}
