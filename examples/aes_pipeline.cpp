// AES-128-CBC in a virtine (the Section 6.4 OpenSSL case study): the block
// cipher runs inside an isolated VM fed through get_data/return_data, and
// the ciphertext is validated against the host reference implementation.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/vaes/aes.h"
#include "src/vcc/vcc.h"
#include "src/vrt/vlibc.h"
#include "src/wasp/runtime.h"

int main() {
  auto image = vcc::CompileProgram(vrt::VlibcSource() + vaes::GuestAesSource(), "main",
                                   vrt::Env::kLong64);
  if (!image.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", image.status().ToString().c_str());
    return 1;
  }
  std::printf("AES virtine image: %zu bytes\n", image->bytes.size());

  const vaes::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const vaes::Block iv = {};
  const std::string message = "virtines: isolating functions at the hardware limit!";
  const std::vector<uint8_t> plaintext =
      vaes::Pkcs7Pad(std::vector<uint8_t>(message.begin(), message.end()));

  // Marshal key | iv | plaintext through get_data.
  std::vector<uint8_t> input;
  input.insert(input.end(), key.begin(), key.end());
  input.insert(input.end(), iv.begin(), iv.end());
  input.insert(input.end(), plaintext.begin(), plaintext.end());

  wasp::Runtime runtime;
  wasp::VirtineSpec spec;
  spec.image = &image.value();
  spec.key = "aes-cbc";
  spec.policy = wasp::kPolicyManaged;
  spec.use_snapshot = true;
  spec.input = &input;

  for (int i = 0; i < 2; ++i) {
    auto outcome = runtime.Invoke(spec);
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "virtine failed: %s\n", outcome.status.ToString().c_str());
      return 1;
    }
    const std::vector<uint8_t> expected = vaes::EncryptCbc(key, iv, plaintext);
    const bool match = outcome.output == expected;
    std::printf("run %d (%s): %zu ciphertext bytes, %s, %8.1f us modeled\n", i + 1,
                outcome.stats.restored_snapshot ? "snapshot restore" : "full boot",
                outcome.output.size(), match ? "MATCHES host AES" : "MISMATCH",
                vbase::CyclesToMicros(outcome.stats.total_cycles));
    if (!match) {
      return 1;
    }
  }
  return 0;
}
