// Managed-language UDFs in virtines (the Section 6.5 / Figure 15 scenario):
// register a JavaScript (microjs) function with the Vespid serverless
// platform and invoke it; every invocation runs the script engine inside an
// isolated VM with only three hypercalls (snapshot, get_data, return_data).
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/vjs/vjs.h"
#include "src/vnet/serverless.h"
#include "src/wasp/runtime.h"

int main() {
  wasp::Runtime runtime;
  vnet::Vespid platform(&runtime);

  auto status = platform.Register("b64", vjs::Base64ScriptSource());
  if (!status.ok()) {
    std::fprintf(stderr, "register failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const std::string message = "serverless functions, isolated at the hardware limit";
  const std::vector<uint8_t> payload(message.begin(), message.end());

  for (int i = 0; i < 3; ++i) {
    auto result = platform.Invoke("b64", payload);
    if (!result.ok()) {
      std::fprintf(stderr, "invoke failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("invocation %d (%s): %7.1f us modeled, wall %7.1f us\n", i + 1,
                result->cold ? "cold, took snapshot" : "warm, snapshot restore",
                vbase::CyclesToMicros(result->modeled_cycles),
                static_cast<double>(result->wall_ns) / 1e3);
    if (i == 0) {
      std::printf("  output: %s\n",
                  std::string(result->output.begin(), result->output.end()).c_str());
      std::printf("  expect: %s\n", vjs::HostBase64(payload).c_str());
    }
  }
  return 0;
}
