// HTTP static-file server with virtine-per-connection isolation (the
// Section 6.3 case study).  Each request is handled by a guest program in a
// fresh virtual context; its only view of the world is the seven
// policy-checked hypercalls (recv/stat/open/read/send/close/exit).
#include <cstdio>
#include <string>

#include "src/base/clock.h"
#include "src/vnet/server.h"
#include "src/wasp/channel.h"
#include "src/wasp/runtime.h"

int main() {
  wasp::Runtime runtime;
  wasp::HostEnv files;
  files.PutFile("/index.html", std::string("<html><body>hello from a virtine</body></html>"));
  files.PutFile("/data.txt", std::string(2048, 'x'));

  vnet::StaticHttpServer server(&runtime, &files);
  std::printf("handler image: %zu bytes\n", server.handler_image().bytes.size());

  const vnet::ServeMode modes[] = {vnet::ServeMode::kNative, vnet::ServeMode::kVirtine,
                                   vnet::ServeMode::kVirtineSnapshot};
  const char* requests[] = {
      "GET /index.html HTTP/1.0\r\n\r\n",
      "GET /data.txt HTTP/1.0\r\n\r\n",
      "GET /missing HTTP/1.0\r\n\r\n",
  };
  for (vnet::ServeMode mode : modes) {
    std::printf("\n--- %s ---\n", vnet::ServeModeName(mode));
    for (const char* request : requests) {
      wasp::ByteChannel channel;
      channel.host().WriteString(request);
      auto stats = server.HandleConnection(channel, mode);
      if (!stats.ok()) {
        std::fprintf(stderr, "serve failed: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      auto response = channel.host().Drain();
      std::string first_line(response.begin(),
                             response.begin() + static_cast<long>(std::min<size_t>(
                                                    response.size(), 24)));
      for (char& c : first_line) {
        if (c == '\r' || c == '\n') {
          c = ' ';
        }
      }
      std::printf("  %-30s -> %-24s (%4zu B", request, first_line.c_str(), response.size());
      if (stats->modeled_cycles > 0) {
        std::printf(", %7.1f us modeled, %llu hypercalls",
                    vbase::CyclesToMicros(stats->modeled_cycles),
                    static_cast<unsigned long long>(stats->io_exits));
      }
      std::printf(")\n");
    }
  }
  return 0;
}
